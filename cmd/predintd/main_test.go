package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	predint "repro"
	"repro/internal/faultinject"
)

// syncBuf is a goroutine-safe writer: run() logs to it from the server
// goroutine while the test polls it for the bound address.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startServer launches run() in a goroutine and waits for the
// "listening on" line, returning the base URL and the channel run's
// error will arrive on.
func startServer(t *testing.T, stderr *syncBuf, args ...string) (string, chan error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- run(args, io.Discard, stderr) }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if out := stderr.String(); strings.Contains(out, "listening on http://") {
			line := out[strings.Index(out, "listening on http://")+len("listening on "):]
			return "http://" + strings.TrimSpace(strings.TrimPrefix(strings.SplitN(line, "\n", 2)[0], "http://")), done
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before binding: %v\nstderr: %s", err, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	t.Fatalf("server never reported its address; stderr: %s", stderr.String())
	return "", nil
}

func postJSON(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestServerEndToEnd is the acceptance test for the hardened serving
// layer, run with -race in CI. One server instance goes through three
// phases: (a) saturation — the admission queue fills and excess
// requests are shed with 503 + Retry-After; (b) degradation — a
// /v1/yield request over the cost ceiling is answered with the marked
// closed-form nominal estimate, bit-identical to LinkYieldNominal
// (model.ScaledFor at the nominal corner); (c) drain — SIGTERM
// finishes the in-flight request with a complete response, rejects new
// work, and run() exits nil.
func TestServerEndToEnd(t *testing.T) {
	var stderr syncBuf
	base, done := startServer(t, &stderr,
		"-addr", "127.0.0.1:0",
		"-inflight", "1",
		"-queue", "2",
		"-max-yield-cost", "512",
		"-request-timeout", "30s",
		"-drain-timeout", "15s",
	)

	linkBody := `{"tech": "90nm", "length_mm": 5}`

	// Warm the calibration cache so phase timings measure the serving
	// layer, not the first-request model calibration.
	if code, _, body := postJSON(t, base+"/v1/link", linkBody); code != http.StatusOK {
		t.Fatalf("warmup link request: status %d, body %s", code, body)
	}

	// ---- Phase a: saturation sheds with 503 + Retry-After ----
	restore := faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Delay, Delay: 300 * time.Millisecond},
	}})
	const burst = 8
	codes := make([]int, burst)
	headers := make([]http.Header, burst)
	var wg sync.WaitGroup
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		go func(i int) {
			defer wg.Done()
			codes[i], headers[i], _ = postJSON(t, base+"/v1/link", linkBody)
		}(i)
	}
	wg.Wait()
	restore()
	served, shed := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable:
			shed++
			if headers[i].Get("Retry-After") == "" {
				t.Errorf("shed response %d lacks a Retry-After header", i)
			}
		default:
			t.Errorf("burst request %d: unexpected status %d", i, code)
		}
	}
	// inflight=1 + queue=2 bounds concurrent admissions to 3; a burst
	// of 8 simultaneous requests must shed at least a few and still
	// serve at least the one holding the slot.
	if served == 0 || shed == 0 {
		t.Fatalf("saturation burst: %d served / %d shed, want both non-zero", served, shed)
	}

	// ---- Phase b: over-budget yield degrades to the nominal estimate ----
	yieldReq := predint.YieldRequest{Tech: "90nm", LengthMM: 5, Samples: predint.Int(4096), Seed: 7}
	code, _, body := postJSON(t, base+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 4096, "seed": 7}`)
	if code != http.StatusOK {
		t.Fatalf("degraded yield request: status %d, body %s", code, body)
	}
	var deg yieldResultDTO
	if err := json.Unmarshal(body, &deg); err != nil {
		t.Fatalf("degraded yield response not JSON: %v\n%s", err, body)
	}
	if !deg.Degraded {
		t.Fatalf("4096-sample request over a 512 cost ceiling not degraded: %+v", deg)
	}
	if deg.Samples != 1 || deg.FailProbBound != 1 {
		t.Errorf("degraded contract violated: samples=%d bound=%g, want 1 and 1", deg.Samples, deg.FailProbBound)
	}
	want, err := predint.LinkYieldNominal(yieldReq)
	if err != nil {
		t.Fatal(err)
	}
	if deg.NominalDelayS != want.NominalDelay {
		t.Errorf("degraded nominal delay %g != LinkYieldNominal's %g (model.ScaledFor at the nominal corner)",
			deg.NominalDelayS, want.NominalDelay)
	}
	if deg.Yield != want.Yield {
		t.Errorf("degraded yield %g != nominal path's %g", deg.Yield, want.Yield)
	}

	// An affordable request on the same server is still served in full.
	code, _, body = postJSON(t, base+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 256, "seed": 7}`)
	if code != http.StatusOK {
		t.Fatalf("full yield request: status %d, body %s", code, body)
	}
	var full yieldResultDTO
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded || full.Samples != 256 {
		t.Errorf("affordable request degraded or truncated: %+v", full)
	}

	// The metrics endpoint reflects both hardening paths.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap map[string]int64
	if err := json.Unmarshal(metricsBody, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap["predintd.shed"] < int64(shed) {
		t.Errorf("shed counter %d below the %d observed sheds", snap["predintd.shed"], shed)
	}
	if snap["predintd.degraded"] < 1 {
		t.Error("degraded counter did not move")
	}
	if snap["predintd.latency.count"] < 1 || snap["predintd.latency.p99_us"] < snap["predintd.latency.p50_us"] {
		t.Errorf("latency histogram inconsistent: %v", snap)
	}

	// ---- Phase c: SIGTERM drains without dropping in-flight work ----
	restore = faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Delay, Delay: 600 * time.Millisecond},
	}})
	defer restore()
	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		code, _, body := postJSON(t, base+"/v1/link", linkBody)
		inflight <- result{code, body}
	}()
	time.Sleep(150 * time.Millisecond) // let the slow request reach the handler
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	res := <-inflight
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request dropped during drain: status %d, body %s", res.code, res.body)
	}
	var drained linkResultDTO
	if err := json.Unmarshal(res.body, &drained); err != nil || drained.Repeaters <= 0 {
		t.Fatalf("in-flight response truncated during drain: %v\n%s", err, res.body)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run() after drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("drain not logged; stderr: %s", stderr.String())
	}
	// The listener is gone: new work is refused, not silently queued.
	if resp, err := http.Post(base+"/v1/link", "application/json", strings.NewReader(linkBody)); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("post-drain request got status %d, want a refusal", resp.StatusCode)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-inflight", "0"},
		{"-queue", "0"},
		{"-max-yield-cost", "0"},
	} {
		var stderr syncBuf
		if err := run(args, io.Discard, &stderr); err == nil {
			t.Errorf("run(%v) accepted an invalid flag", args)
		}
	}
}

func TestUsageError(t *testing.T) {
	var stderr syncBuf
	if err := run([]string{"-no-such-flag"}, io.Discard, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "flag") {
		t.Errorf("no usage output on bad flags: %s", stderr.String())
	}
}
