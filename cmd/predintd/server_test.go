package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// testServer wires routes() into an httptest server with generous
// limits (individual tests tighten what they exercise).
func testServer(t *testing.T, inflight, queue, maxYieldCost int, reqTimeout time.Duration) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(inflight, queue, maxYieldCost, reqTimeout, time.Second)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestBadRequestBodies(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	for name, body := range map[string]string{
		"malformed":     `{"tech": "90nm",`,
		"unknown-field": `{"tech": "90nm", "length_mm": 5, "lenght": 3}`,
		"trailing":      `{"tech": "90nm", "length_mm": 5} extra`,
		"validation":    `{"tech": "13nm", "length_mm": 5}`,
		"zero-length":   `{"tech": "90nm"}`,
	} {
		code, _, resp := postJSON(t, ts.URL+"/v1/link", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, code, resp)
		}
		var doc map[string]string
		if err := json.Unmarshal(resp, &doc); err != nil || doc["error"] == "" {
			t.Errorf("%s: error body malformed: %s", name, resp)
		}
	}
}

func TestTimeoutParam(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	if code, _, _ := postJSON(t, ts.URL+"/v1/yield?timeout=bogus", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusBadRequest {
		t.Errorf("invalid timeout param: status %d, want 400", code)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/yield?timeout=-1s", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusBadRequest {
		t.Errorf("negative timeout param: status %d, want 400", code)
	}
	// A 1ms deadline cannot cover a large Monte Carlo run: the engine
	// returns context.DeadlineExceeded at a batch boundary and the
	// server maps it to 504.
	code, _, body := postJSON(t, ts.URL+"/v1/yield?timeout=1ms",
		`{"tech": "90nm", "length_mm": 5, "samples": 1048576, "workers": 1}`)
	if code != http.StatusGatewayTimeout {
		t.Errorf("expired deadline: status %d, want 504 (body %s)", code, body)
	}
}

func TestInjectedFaultMapsTo500(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Error, Times: 1},
	}})()
	code, _, body := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected fault: status %d, want 500 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "injected") {
		t.Errorf("error body does not name the injected fault: %s", body)
	}
	// The budget is spent; the server recovered.
	if code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusOK {
		t.Errorf("request after injected fault: status %d, want 200", code)
	}
}

func TestInjectedPanicContained(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Panic, Times: 1},
	}})()
	code, _, body := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Errorf("error body does not mention the panic: %s", body)
	}
	// The slot was released on the way out: the server still serves,
	// and a full in-flight complement is available.
	for i := 0; i < 5; i++ {
		if code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusOK {
			t.Fatalf("request %d after contained panic: status %d", i, code)
		}
	}
}

// TestQueuePressureDegradesYield: a yield request admitted while
// another request holds the only slot sees pressure and is served the
// nominal estimate even though its sample budget is affordable.
func TestQueuePressureDegradesYield(t *testing.T) {
	_, ts := testServer(t, 1, 8, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Delay, Delay: 400 * time.Millisecond, Times: 1},
	}})()
	slow := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
		slow <- code
	}()
	time.Sleep(100 * time.Millisecond) // slow request holds the slot
	code, _, body := postJSON(t, ts.URL+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 64}`)
	if code != http.StatusOK {
		t.Fatalf("pressured yield: status %d, body %s", code, body)
	}
	var res yieldResultDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Errorf("yield under queue pressure not degraded: %+v", res)
	}
	if got := <-slow; got != http.StatusOK {
		t.Errorf("slot-holding request: status %d", got)
	}
}

func TestHealthz(t *testing.T) {
	s, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy: status %d", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining: status %d, body %s", resp.StatusCode, body)
	}
	// Admission refuses outright while draining.
	code, hdr, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining admission: status %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	resp, err := http.Get(ts.URL + "/v1/link")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST route: status %d, want 405", resp.StatusCode)
	}
}

func TestNoCEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("NoC synthesis is seconds of work")
	}
	_, ts := testServer(t, 4, 16, 1<<20, 60*time.Second)
	code, _, body := postJSON(t, ts.URL+"/v1/noc", `{"case": "VPROC", "tech": "90nm"}`)
	if code != http.StatusOK {
		t.Fatalf("noc: status %d, body %s", code, body)
	}
	var res nocResultDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Links <= 0 || res.Routers <= 0 || res.PowerW <= 0 {
		t.Fatalf("degenerate noc result: %+v", res)
	}
}
