package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// testServer wires routes() into an httptest server with generous
// limits (individual tests tighten what they exercise).
func testServer(t *testing.T, inflight, queue, maxYieldCost int, reqTimeout time.Duration) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(inflight, queue, maxYieldCost, reqTimeout, time.Second)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestBadRequestBodies(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	for name, body := range map[string]string{
		"malformed":     `{"tech": "90nm",`,
		"unknown-field": `{"tech": "90nm", "length_mm": 5, "lenght": 3}`,
		"trailing":      `{"tech": "90nm", "length_mm": 5} extra`,
		"validation":    `{"tech": "13nm", "length_mm": 5}`,
		"zero-length":   `{"tech": "90nm"}`,
	} {
		code, _, resp := postJSON(t, ts.URL+"/v1/link", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, code, resp)
		}
		var doc map[string]string
		if err := json.Unmarshal(resp, &doc); err != nil || doc["error"] == "" {
			t.Errorf("%s: error body malformed: %s", name, resp)
		}
	}
}

func TestTimeoutParam(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	if code, _, _ := postJSON(t, ts.URL+"/v1/yield?timeout=bogus", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusBadRequest {
		t.Errorf("invalid timeout param: status %d, want 400", code)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/yield?timeout=-1s", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusBadRequest {
		t.Errorf("negative timeout param: status %d, want 400", code)
	}
	// A 1ms deadline cannot cover a large Monte Carlo run: the engine
	// returns context.DeadlineExceeded at a batch boundary and the
	// server maps it to 504.
	code, _, body := postJSON(t, ts.URL+"/v1/yield?timeout=1ms",
		`{"tech": "90nm", "length_mm": 5, "samples": 1048576, "workers": 1}`)
	if code != http.StatusGatewayTimeout {
		t.Errorf("expired deadline: status %d, want 504 (body %s)", code, body)
	}
}

func TestInjectedFaultMapsTo500(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Error, Times: 1},
	}})()
	code, _, body := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected fault: status %d, want 500 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "injected") {
		t.Errorf("error body does not name the injected fault: %s", body)
	}
	// The budget is spent; the server recovered.
	if code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusOK {
		t.Errorf("request after injected fault: status %d, want 200", code)
	}
}

func TestInjectedPanicContained(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Panic, Times: 1},
	}})()
	code, _, body := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want 500 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Errorf("error body does not mention the panic: %s", body)
	}
	// The slot was released on the way out: the server still serves,
	// and a full in-flight complement is available.
	for i := 0; i < 5; i++ {
		if code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`); code != http.StatusOK {
			t.Fatalf("request %d after contained panic: status %d", i, code)
		}
	}
}

// TestQueuePressureDegradesYield: a yield request admitted while
// another request holds the only slot sees pressure and is served the
// nominal estimate even though its sample budget is affordable.
func TestQueuePressureDegradesYield(t *testing.T) {
	_, ts := testServer(t, 1, 8, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Delay, Delay: 400 * time.Millisecond, Times: 1},
	}})()
	slow := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
		slow <- code
	}()
	time.Sleep(100 * time.Millisecond) // slow request holds the slot
	code, _, body := postJSON(t, ts.URL+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 64}`)
	if code != http.StatusOK {
		t.Fatalf("pressured yield: status %d, body %s", code, body)
	}
	var res yieldResultDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Errorf("yield under queue pressure not degraded: %+v", res)
	}
	if got := <-slow; got != http.StatusOK {
		t.Errorf("slot-holding request: status %d", got)
	}
}

func TestYieldBatchEndpoint(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 30*time.Second)
	code, _, body := postJSON(t, ts.URL+"/v1/yield/batch",
		`{"tech": "90nm", "length_mm": 5, "samples": 512, "seed": 1, "target_ps": 520,
		  "candidates": [{"repeater_size": 8, "repeaters": 10}, {"repeater_size": 12, "repeaters": 8}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", code, body)
	}
	var res yieldBatchResultDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.TargetS <= 0 || len(res.Results) != 2 {
		t.Fatalf("degenerate batch result: %+v", res)
	}
	for c, r := range res.Results {
		if r.Samples != 512 || r.NominalDelayS <= 0 || r.Yield < 0 || r.Yield > 1 {
			t.Errorf("candidate %d degenerate: %+v", c, r)
		}
		if r.Degraded {
			t.Errorf("candidate %d degraded on an affordable budget: %+v", c, r)
		}
	}
	if res.Results[0].RepeaterSize != 8 || res.Results[1].RepeaterSize != 12 {
		t.Errorf("results out of request order: %+v", res.Results)
	}
}

func TestYieldBatchBadRequests(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	for name, body := range map[string]string{
		"yield-target":  `{"tech": "90nm", "length_mm": 5, "yield_target": 0.95, "candidates": [{"repeater_size": 8, "repeaters": 10}]}`,
		"no-candidates": `{"tech": "90nm", "length_mm": 5}`,
		"bad-candidate": `{"tech": "90nm", "length_mm": 5, "candidates": [{"repeater_size": -1, "repeaters": 10}]}`,
		"unknown-field": `{"tech": "90nm", "length_mm": 5, "candidtaes": [{"repeater_size": 8, "repeaters": 10}]}`,
	} {
		code, _, resp := postJSON(t, ts.URL+"/v1/yield/batch", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, code, resp)
		}
	}
}

// TestYieldBatchDegradesOverCostCeiling: a batch whose sample budget
// exceeds the server's ceiling is served the closed-form nominal
// evaluation for every candidate, marked degraded.
func TestYieldBatchDegradesOverCostCeiling(t *testing.T) {
	_, ts := testServer(t, 4, 16, 256, 10*time.Second)
	code, _, body := postJSON(t, ts.URL+"/v1/yield/batch",
		`{"tech": "90nm", "length_mm": 5, "samples": 1024,
		  "candidates": [{"repeater_size": 60, "repeaters": 2}, {"repeater_size": 4, "repeaters": 1}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch over ceiling: status %d, body %s", code, body)
	}
	var res yieldBatchResultDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	for c, r := range res.Results {
		if !r.Degraded || r.Samples != 1 || r.FailProbBound != 1 {
			t.Errorf("candidate %d not degraded: %+v", c, r)
		}
	}
}

// TestHealthzReadyz pins the liveness/readiness split: /healthz is
// pure process liveness and stays 200 even while draining — only
// /readyz (what load balancers should watch) flips to 503, so a drain
// stops traffic without the orchestrator killing a healthy process.
func TestHealthzReadyz(t *testing.T) {
	s, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy %s: status %d", path, resp.StatusCode)
		}
	}
	s.draining.Store(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining liveness: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining readiness: status %d, body %s", resp.StatusCode, body)
	}
	// Admission refuses outright while draining.
	code, hdr, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining admission: status %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}
}

// TestBodyCap413 pins the request-body bound on the public endpoints:
// a body over -max-body is refused with 413 before it is buffered.
func TestBodyCap413(t *testing.T) {
	s, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	s.maxBody = 4096
	huge := `{"tech": "90nm", "length_mm": 5, "pad": "` + strings.Repeat("x", 8192) + `"}`
	code, _, body := postJSON(t, ts.URL+"/v1/link", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, body %s, want 413", code, body)
	}
	// At the cap boundary normal requests still work.
	code, _, body = postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusOK {
		t.Fatalf("normal body after cap change: status %d, body %s", code, body)
	}
}

// TestWorkersEndpointWithoutCoordinator: the membership admin endpoint
// 404s when the replica is not running in coordinator mode.
func TestWorkersEndpointWithoutCoordinator(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	resp, err := http.Get(ts.URL + "/v1/internal/workers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("workers without coordinator: status %d, want 404", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	resp, err := http.Get(ts.URL + "/v1/link")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST route: status %d, want 405", resp.StatusCode)
	}
}

func TestNoCEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("NoC synthesis is seconds of work")
	}
	_, ts := testServer(t, 4, 16, 1<<20, 60*time.Second)
	code, _, body := postJSON(t, ts.URL+"/v1/noc", `{"case": "VPROC", "tech": "90nm"}`)
	if code != http.StatusOK {
		t.Fatalf("noc: status %d, body %s", code, body)
	}
	var res nocResultDTO
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Links <= 0 || res.Routers <= 0 || res.PowerW <= 0 {
		t.Fatalf("degenerate noc result: %+v", res)
	}
}
