package main

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/surface"
)

// postYield posts a /v1/yield body and decodes the result.
func postYield(t *testing.T, url, body string) yieldResultDTO {
	t.Helper()
	code, _, resp := postJSON(t, url+"/v1/yield", body)
	if code != http.StatusOK {
		t.Fatalf("yield request: status %d, body %s", code, resp)
	}
	var res yieldResultDTO
	if err := json.Unmarshal(resp, &res); err != nil {
		t.Fatalf("yield response not JSON: %v\n%s", err, resp)
	}
	return res
}

// TestYieldSurfaceLadderEndToEnd pins the three-tier serving ladder on
// /v1/yield: a cold query runs full Monte Carlo ("source": "mc"), the
// repeated query is answered from the warm surface ("source":
// "surface") with the memoized estimate unchanged, a warm query under
// queue pressure is STILL served from the surface (tier 1 outranks
// degradation — a real banded estimate beats the vacuous nominal step),
// and only a cold query under pressure falls to the closed-form
// nominal tier ("source": "nominal"). The no_surface escape hatch
// forces the full pipeline throughout.
func TestYieldSurfaceLadderEndToEnd(t *testing.T) {
	s, ts := testServer(t, 1, 8, 1<<20, 10*time.Second)
	s.surf = surface.New(surface.Options{})
	hits0 := obs.Snapshot()["predintd.yield_surface_hits"]
	misses0 := obs.Snapshot()["predintd.yield_surface_misses"]

	warmBody := `{"tech": "90nm", "length_mm": 5, "samples": 256, "seed": 9}`

	// Cold → tier 2, full Monte Carlo.
	cold := postYield(t, ts.URL, warmBody)
	if cold.Source != "mc" || cold.Degraded || cold.Samples != 256 {
		t.Fatalf("cold query: %+v, want source mc with the full budget", cold)
	}

	// Warm repeat → tier 1, the memoized estimate verbatim.
	warm := postYield(t, ts.URL, warmBody)
	if warm.Source != "surface" || warm.Degraded {
		t.Fatalf("repeated query not served from the surface: %+v", warm)
	}
	if warm.FailProb != cold.FailProb || warm.StdErr != cold.StdErr || warm.Samples != cold.Samples ||
		warm.Repeaters != cold.Repeaters || warm.RepeaterSize != cold.RepeaterSize {
		t.Fatalf("warm answer mangled the memoized estimate:\n  mc:   %+v\n  warm: %+v", cold, warm)
	}

	// Escape hatch → full pipeline, bit-identical to the cold run.
	nos := postYield(t, ts.URL, `{"tech": "90nm", "length_mm": 5, "samples": 256, "seed": 9, "no_surface": true}`)
	if nos.Source != "mc" || nos.FailProb != cold.FailProb || nos.StdErr != cold.StdErr {
		t.Fatalf("no_surface answer differs from the cold MC run:\n  mc: %+v\n  nos: %+v", cold, nos)
	}

	// Pressure phase: a delayed request holds the single slot, so the
	// next admissions observe queue pressure.
	pressureRun := func(body string) yieldResultDTO {
		t.Helper()
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"predintd.handle": {Kind: faultinject.Delay, Delay: 400 * time.Millisecond, Times: 1},
		}})()
		slow := make(chan int, 1)
		go func() {
			code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
			slow <- code
		}()
		time.Sleep(100 * time.Millisecond) // the slow request reaches the handler
		res := postYield(t, ts.URL, body)
		if got := <-slow; got != http.StatusOK {
			t.Fatalf("slot-holding request: status %d", got)
		}
		return res
	}

	// Pressured + warm → still tier 1.
	if res := pressureRun(warmBody); res.Source != "surface" || res.Degraded {
		t.Fatalf("warm query under pressure not served from the surface: %+v", res)
	}
	// Pressured + cold → tier 3, the nominal closed form.
	if res := pressureRun(`{"tech": "90nm", "length_mm": 4, "samples": 256, "seed": 9}`); res.Source != "nominal" || !res.Degraded {
		t.Fatalf("cold query under pressure did not degrade to nominal: %+v", res)
	}

	// The hit-ratio counters moved: two warm answers, at least two
	// consults that fell through (cold, pressured-cold).
	snap := obs.Snapshot()
	if got := snap["predintd.yield_surface_hits"] - hits0; got != 2 {
		t.Errorf("yield_surface_hits moved by %d, want 2", got)
	}
	if got := snap["predintd.yield_surface_misses"] - misses0; got != 2 {
		t.Errorf("yield_surface_misses moved by %d, want 2 (cold and pressured-cold)", got)
	}
}

// TestYieldBatchSurfaceEndToEnd pins the all-or-nothing batch surface
// path over HTTP: a repeated batch is served entirely from the cache,
// per-candidate estimates unchanged.
func TestYieldBatchSurfaceEndToEnd(t *testing.T) {
	s, ts := testServer(t, 4, 16, 1<<20, 30*time.Second)
	s.surf = surface.New(surface.Options{})
	body := `{"tech": "90nm", "length_mm": 5, "samples": 256, "seed": 2, "target_ps": 520,
	  "candidates": [{"repeater_size": 8, "repeaters": 10}, {"repeater_size": 12, "repeaters": 8}]}`
	post := func() yieldBatchResultDTO {
		t.Helper()
		code, _, resp := postJSON(t, ts.URL+"/v1/yield/batch", body)
		if code != http.StatusOK {
			t.Fatalf("batch: status %d, body %s", code, resp)
		}
		var res yieldBatchResultDTO
		if err := json.Unmarshal(resp, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := post()
	for c, r := range cold.Results {
		if r.Source != "mc" {
			t.Fatalf("cold batch candidate %d labeled %q", c, r.Source)
		}
	}
	warm := post()
	for c, r := range warm.Results {
		if r.Source != "surface" || r.FailProb != cold.Results[c].FailProb || r.StdErr != cold.Results[c].StdErr {
			t.Fatalf("warm batch candidate %d not the memoized estimate: %+v vs %+v", c, r, cold.Results[c])
		}
	}
}
