// Command predintd serves the predint facade over HTTP/JSON — link
// design, timing-yield estimation, and NoC synthesis as a hardened
// service:
//
//   - POST /v1/link, /v1/yield, /v1/noc — the facade entry points,
//     snake_case JSON in and out
//   - GET /healthz, /metrics — liveness and the observability snapshot
//
// Hardening, in request order: every request runs under a deadline
// (-request-timeout, tightened by a ?timeout= query parameter); at
// most -inflight requests execute at once with at most -queue more
// waiting, and anything beyond that is shed with 503 + Retry-After;
// /v1/yield requests whose Monte Carlo budget exceeds -max-yield-cost
// — or that arrive while the queue is under pressure — degrade to the
// closed-form nominal estimate, marked "degraded": true; SIGINT or
// SIGTERM drains gracefully, finishing in-flight requests (bounded by
// -drain-timeout) while rejecting new ones.
//
// The yield endpoints serve a three-tier ladder, best answer first:
// the warm-start response surface (on unless -no-surface; answers
// repeated queries by interpolation with a conservative band, marked
// "source": "surface"), then the full Monte Carlo pipeline, then —
// past the cost ceiling or under queue pressure — the closed-form
// nominal estimate ("source": "nominal").
//
// Coordinator mode (-workers host:port,host:port,...) fans each
// /v1/yield sample range out over the listed worker replicas as
// contiguous sample-index shards served at POST /v1/internal/shard,
// merging the partial accumulators in index order — the answer is
// bit-identical to a single-process run at any shard count. Failed
// shards retry against the next replica (-shard-attempts) and degrade
// to local execution when the worker set is exhausted; surface probes
// and records route to the replica owning the request's link class
// under rendezvous hashing, guarded by per-replica surface versions.
//
// The worker set is managed, not static: a background prober hits each
// worker's /readyz every -worker-probe-interval, ejecting a worker
// after -worker-eject-after consecutive failures and readmitting it
// after -worker-readmit-after consecutive successes; every worker
// carries a circuit breaker consulted before dispatch; and with
// -hedge-after > 0 a straggling shard is hedged onto a second healthy
// replica, first valid answer winning. GET /v1/internal/workers
// snapshots per-worker state, breaker, probe streaks, and latency;
// GET /healthz is pure process liveness while GET /readyz additionally
// reflects draining and (in coordinator mode) first-probe readiness.
//
// Usage:
//
//	predintd [-addr localhost:8080] [-inflight 8] [-queue 64]
//	         [-request-timeout 30s] [-drain-timeout 30s]
//	         [-max-yield-cost 65536] [-retry-after 1s] [-no-surface]
//	         [-max-body 1048576]
//	         [-workers host:port,...] [-shard-samples 0]
//	         [-shard-timeout 10s] [-shard-attempts 0]
//	         [-worker-probe-interval 2s] [-worker-probe-timeout 1s]
//	         [-worker-eject-after 3] [-worker-readmit-after 2]
//	         [-hedge-after 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/coordinator"
	"repro/internal/surface"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("predintd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrFlag := fs.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
	inflightFlag := fs.Int("inflight", 8, "maximum concurrently executing requests")
	queueFlag := fs.Int("queue", 64, "admission queue depth beyond the in-flight cap; excess requests are shed with 503")
	reqTimeoutFlag := fs.Duration("request-timeout", 30*time.Second, "per-request deadline (a ?timeout= query parameter can tighten it)")
	drainTimeoutFlag := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	maxYieldCostFlag := fs.Int("max-yield-cost", 65536, "largest Monte Carlo sample budget served in full; costlier /v1/yield requests degrade to the nominal estimate")
	retryAfterFlag := fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	noSurfaceFlag := fs.Bool("no-surface", false, "disable the yield-response-surface cache; every /v1/yield query runs the full pipeline")
	maxBodyFlag := fs.Int64("max-body", 1<<20, "largest accepted request body in bytes; bigger bodies are refused with 413")
	workersFlag := fs.String("workers", "", "comma-separated worker replica addresses; enables coordinator mode for /v1/yield")
	shardSamplesFlag := fs.Int("shard-samples", 0, "samples per shard in coordinator mode; 0 sizes shards to span roughly two waves across the worker set")
	shardTimeoutFlag := fs.Duration("shard-timeout", 10*time.Second, "per-shard RPC timeout in coordinator mode")
	shardAttemptsFlag := fs.Int("shard-attempts", 0, "replicas a failing shard is retried against before local fallback; 0 means one attempt per worker")
	probeIntervalFlag := fs.Duration("worker-probe-interval", 2*time.Second, "health-probe cadence against each worker in coordinator mode; 0 disables probing")
	probeTimeoutFlag := fs.Duration("worker-probe-timeout", time.Second, "per-probe timeout")
	ejectAfterFlag := fs.Int("worker-eject-after", 3, "consecutive probe failures before a worker is ejected from dispatch")
	readmitAfterFlag := fs.Int("worker-readmit-after", 2, "consecutive probe successes before an ejected worker is readmitted")
	hedgeAfterFlag := fs.Duration("hedge-after", 0, "delay before a straggling shard is hedged onto a second healthy worker; 0 disables hedging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inflightFlag < 1 {
		return fmt.Errorf("predintd: -inflight %d, need at least 1", *inflightFlag)
	}
	if *queueFlag < 1 {
		return fmt.Errorf("predintd: -queue %d, need at least 1", *queueFlag)
	}
	if *maxYieldCostFlag < 1 {
		return fmt.Errorf("predintd: -max-yield-cost %d, need at least 1", *maxYieldCostFlag)
	}
	if *maxBodyFlag < 1 {
		return fmt.Errorf("predintd: -max-body %d, need at least 1", *maxBodyFlag)
	}

	ctx, cancel := cliutil.Context(0)
	defer cancel()

	s := newServer(*inflightFlag, *queueFlag, *maxYieldCostFlag, *reqTimeoutFlag, *retryAfterFlag)
	s.maxBody = *maxBodyFlag

	// The warm-start surface is on by default in the daemon — it is
	// exactly the repeated-traffic shape the cache exists for — and a
	// strict acceleration: cold or out-of-band queries run the
	// unchanged full pipeline. The cache is per-server state (each
	// replica owns its own invalidation version), not process-global.
	if !*noSurfaceFlag {
		s.surf = surface.New(surface.Options{})
	}

	if *workersFlag != "" {
		coord, err := coordinator.New(coordinator.Config{
			Workers:       strings.Split(*workersFlag, ","),
			Client:        &http.Client{Timeout: *shardTimeoutFlag},
			ShardSamples:  *shardSamplesFlag,
			MaxAttempts:   *shardAttemptsFlag,
			Surface:       s.surf,
			ProbeInterval: *probeIntervalFlag,
			ProbeTimeout:  *probeTimeoutFlag,
			EjectAfter:    *ejectAfterFlag,
			ReadmitAfter:  *readmitAfterFlag,
			HedgeAfter:    *hedgeAfterFlag,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		s.coord = coord
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.routes()}
	fmt.Fprintf(stderr, "predintd listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Drain: flag first so keep-alive connections see 503s on new
		// requests, then Shutdown — which stops the listener and waits
		// for in-flight handlers — bounded by the drain timeout.
		s.draining.Store(true)
		fmt.Fprintln(stderr, "predintd draining: finishing in-flight requests, rejecting new ones")
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeoutFlag)
		defer cancelDrain()
		if err := srv.Shutdown(drainCtx); err != nil {
			_ = srv.Close()
			return fmt.Errorf("predintd: drain timed out: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(stderr, "predintd drained cleanly")
		return nil
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "predintd:", err)
		}
		os.Exit(1)
	}
}
