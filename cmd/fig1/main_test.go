package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("library characterization is seconds of work")
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"FIG. 1", "intrinsic[ps]", "pooled quadratic fit"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "characterizing") {
		t.Errorf("progress line missing from stderr: %s", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "flag") {
		t.Errorf("no usage/diagnostic on stderr: %s", errOut.String())
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
	if out.Len() != 0 {
		t.Errorf("partial output despite the error: %s", out.String())
	}
}
