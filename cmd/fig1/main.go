// Command fig1 regenerates the data behind the paper's Fig. 1: the
// dependence of repeater intrinsic delay on input slew (near
// quadratic) and on inverter size (essentially none). Output is a
// plain table, one series per inverter size, suitable for plotting.
//
// Usage:
//
//	fig1 [-tech 90nm]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/tech"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fig1", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "90nm", "technology name")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tc, err := tech.Lookup(*techFlag)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fig1: characterizing %s library...\n", tc.Name)
	res, err := experiments.Fig1(tc)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "FIG. 1: REPEATER INTRINSIC DELAY (%s, inverters, rising output)\n\n", res.Tech)
	fmt.Fprintf(stdout, "%8s %10s %14s\n", "size", "slew[ps]", "intrinsic[ps]")
	last := -1.0
	for _, p := range res.Points {
		if p.Size != last {
			if last >= 0 {
				fmt.Fprintln(stdout)
			}
			last = p.Size
		}
		fmt.Fprintf(stdout, "%8g %10.1f %14.3f\n", p.Size, p.Slew*1e12, p.Intrinsic*1e12)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "pooled quadratic fit: i(s) = %.4g + %.4g*s + %.4g*s^2  [s in seconds]\n",
		res.QuadCoeffs[0], res.QuadCoeffs[1], res.QuadCoeffs[2])
	fmt.Fprintf(stdout, "max spread across sizes at fixed slew: %.3f ps\n", res.SizeSpreadMax*1e12)
	fmt.Fprintf(stdout, "min spread across slews at fixed size: %.3f ps\n", res.SlewSpreadMin*1e12)
	fmt.Fprintln(stdout, "(paper: intrinsic delay is essentially independent of repeater size")
	fmt.Fprintln(stdout, " and depends nearly quadratically on input slew)")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "fig1:", err)
		}
		os.Exit(1)
	}
}
