package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"devices:", "global wire:", "per mm:", "max feasible link"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONDump(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "65nm", "-json"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if doc["Name"] != "65nm" {
		t.Errorf("dumped descriptor names %v, want 65nm", doc["Name"])
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "flag") {
		t.Errorf("no usage/diagnostic on stderr: %s", errOut.String())
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
	if out.Len() != 0 {
		t.Errorf("partial output despite the error: %s", out.String())
	}
}
