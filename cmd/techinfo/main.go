// Command techinfo summarizes a technology node: the descriptor
// values, derived wire parasitics per millimeter (with and without
// the nanometer corrections), the characterized FO4 delay, and the
// wire-length feasibility limits under both interconnect models. With
// -json it dumps the raw descriptor for editing and reloading.
//
// Usage:
//
//	techinfo [-tech 65nm] [-json] [-fo4]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/liberty"
	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/wire"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("techinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "65nm", "technology node")
	jsonFlag := fs.Bool("json", false, "dump the descriptor as JSON")
	fo4Flag := fs.Bool("fo4", false, "characterize the library and report FO4 (slow on first use)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tc, err := tech.Lookup(*techFlag)
	if err != nil {
		return err
	}
	if *jsonFlag {
		return tc.WriteJSON(stdout)
	}

	fmt.Fprintf(stdout, "%s\n\n", tc)
	fmt.Fprintf(stdout, "devices:    Vth %-5.2g/%-5.2g V   Ioff %.3g/%.3g A/m   P/N ratio %g\n",
		tc.NMOS.Vth, tc.PMOS.Vth, tc.NMOS.IOff, tc.PMOS.IOff, tc.PNRatio)
	fmt.Fprintf(stdout, "global wire: w=%.0fnm s=%.0fnm t=%.0fnm (barrier %.1fnm)\n",
		tc.Global.Width*1e9, tc.Global.Spacing*1e9, tc.Global.Thickness*1e9, tc.Barrier*1e9)

	w := tc.Global.Width
	rCorr := wire.ResistancePerMeter(tc, tc.Global, w) * 1e-3
	rClassic := wire.ClassicResistancePerMeter(tc, tc.Global, w) * 1e-3
	cg := wire.GroundCapPerMeter(tc, tc.Global, w) * 1e-3 * 1e15
	cc := wire.CouplingCapPerMeter(tc, tc.Global, tc.Global.Spacing) * 1e-3 * 1e15
	fmt.Fprintf(stdout, "per mm:     R=%.1f Ω (classic %.1f Ω, +%.0f%%)   Cg=%.1f fF   Cc=%.1f fF/side\n",
		rCorr, rClassic, (rCorr/rClassic-1)*100, cg, cc)

	for _, mk := range []string{"proposed", "original"} {
		var lm noc.LinkModel
		var err error
		if mk == "proposed" {
			lm, err = noc.NewProposedModel(tc, 128, wire.SWSS)
		} else {
			lm, err = noc.NewOriginalModel(tc, 128, wire.SWSS)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "max feasible link (%s model, %.3g GHz): %.2f mm\n",
			mk, tc.Clock/1e9, lm.MaxLength()*1e3)
	}

	if *fo4Flag {
		fmt.Fprintln(stderr, "characterizing library for FO4...")
		lib, err := liberty.Get(tc)
		if err != nil {
			return err
		}
		fo4, err := lib.FO4(8)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "FO4 delay:  %.2f ps\n", fo4*1e12)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "techinfo:", err)
		}
		os.Exit(1)
	}
}
