// Command link designs one buffered global link from the command
// line — the day-to-day use of the library: pick a technology, a
// length, and a style; get the buffering solution and the predicted
// delay/power/area, optionally cross-checked against the golden
// sign-off engine.
//
// Usage:
//
//	link -tech 65nm -length 5 [-bits 128] [-style swss|shielded|staggered]
//	     [-weight 0.5 | -fastest] [-golden]
//	     [-timeout 30s] [-metrics] [-debug-addr localhost:6060]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	predint "repro"
	"repro/internal/cliutil"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("link", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "65nm", "technology node")
	lengthFlag := fs.Float64("length", 5, "link length in mm")
	bitsFlag := fs.Int("bits", 128, "bus width in bits")
	styleFlag := fs.String("style", "swss", "design style: swss, shielded, staggered")
	weightFlag := fs.Float64("weight", predint.DefaultPowerWeight, "power weight of the buffering objective")
	slewFlag := fs.Float64("slew", predint.DefaultInputSlewPS, "input slew in ps (drives both the model and the golden cross-check)")
	fastest := fs.Bool("fastest", false, "pure delay-optimal buffering")
	golden := fs.Bool("golden", false, "cross-check with the golden engine (restricts to library cells; slow on first use)")
	timeoutFlag := fs.Duration("timeout", 0, "abort the run after this long (0 = no deadline; SIGINT/SIGTERM always cancel)")
	metricsFlag := fs.Bool("metrics", false, "dump the observability counters as JSON to stderr after the run")
	debugAddr := fs.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := cliutil.Context(*timeoutFlag)
	defer cancel()
	stopDebug, err := cliutil.StartDebug(*debugAddr, stderr)
	if err != nil {
		return err
	}
	defer stopDebug()
	defer cliutil.DumpMetrics(*metricsFlag, stderr)

	req := predint.LinkRequest{
		Tech:             *techFlag,
		LengthMM:         *lengthFlag,
		Bits:             predint.Int(*bitsFlag),
		Style:            predint.Style(*styleFlag),
		PowerWeight:      predint.Float(*weightFlag),
		InputSlewPS:      predint.Float(*slewFlag),
		DelayOptimal:     *fastest,
		LibrarySizesOnly: *golden,
	}
	res, err := predint.DesignLinkCtx(ctx, req)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%g mm %d-bit link at %s (%s)\n", *lengthFlag, *bitsFlag, *techFlag, *styleFlag)
	fmt.Fprintf(stdout, "  buffering:       %d × INVD%g (uniformly spaced)\n", res.Repeaters, res.RepeaterSize)
	fmt.Fprintf(stdout, "  delay:           %.1f ps\n", res.Delay*1e12)
	fmt.Fprintf(stdout, "  output slew:     %.1f ps\n", res.OutputSlew*1e12)
	fmt.Fprintf(stdout, "  dynamic power:   %.3f mW\n", res.DynamicPower*1e3)
	fmt.Fprintf(stdout, "  leakage power:   %.4f mW\n", res.LeakagePower*1e3)
	fmt.Fprintf(stdout, "  area:            %.4f mm²\n", res.Area*1e6)
	fmt.Fprintf(stdout, "  wire R (bit):    %.1f Ω   wire C (bit): %.1f fF\n",
		res.WireResistance, res.WireCapacitance*1e15)

	if *golden {
		fmt.Fprintln(stdout, "  running golden sign-off analysis...")
		g, err := predint.GoldenLinkDelay(*techFlag, res.RepeaterSize, res.Repeaters, *lengthFlag, predint.Style(*styleFlag), *slewFlag)
		if err != nil {
			return fmt.Errorf("golden: %w", err)
		}
		fmt.Fprintf(stdout, "  golden delay:    %.1f ps (model error %+.1f%%)\n", g*1e12, (res.Delay-g)/g*100)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "link:", err)
		}
		os.Exit(1)
	}
}
