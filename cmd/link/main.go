// Command link designs one buffered global link from the command
// line — the day-to-day use of the library: pick a technology, a
// length, and a style; get the buffering solution and the predicted
// delay/power/area, optionally cross-checked against the golden
// sign-off engine.
//
// Usage:
//
//	link -tech 65nm -length 5 [-bits 128] [-style swss|shielded|staggered]
//	     [-weight 0.5 | -fastest] [-golden]
package main

import (
	"flag"
	"fmt"
	"os"

	predint "repro"
)

func main() {
	techFlag := flag.String("tech", "65nm", "technology node")
	lengthFlag := flag.Float64("length", 5, "link length in mm")
	bitsFlag := flag.Int("bits", 128, "bus width in bits")
	styleFlag := flag.String("style", "swss", "design style: swss, shielded, staggered")
	weightFlag := flag.Float64("weight", predint.DefaultPowerWeight, "power weight of the buffering objective")
	slewFlag := flag.Float64("slew", predint.DefaultInputSlewPS, "input slew in ps (drives both the model and the golden cross-check)")
	fastest := flag.Bool("fastest", false, "pure delay-optimal buffering")
	golden := flag.Bool("golden", false, "cross-check with the golden engine (restricts to library cells; slow on first use)")
	flag.Parse()

	req := predint.LinkRequest{
		Tech:             *techFlag,
		LengthMM:         *lengthFlag,
		Bits:             predint.Int(*bitsFlag),
		Style:            predint.Style(*styleFlag),
		PowerWeight:      predint.Float(*weightFlag),
		InputSlewPS:      predint.Float(*slewFlag),
		DelayOptimal:     *fastest,
		LibrarySizesOnly: *golden,
	}
	res, err := predint.DesignLink(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "link:", err)
		os.Exit(1)
	}

	fmt.Printf("%g mm %d-bit link at %s (%s)\n", *lengthFlag, *bitsFlag, *techFlag, *styleFlag)
	fmt.Printf("  buffering:       %d × INVD%g (uniformly spaced)\n", res.Repeaters, res.RepeaterSize)
	fmt.Printf("  delay:           %.1f ps\n", res.Delay*1e12)
	fmt.Printf("  output slew:     %.1f ps\n", res.OutputSlew*1e12)
	fmt.Printf("  dynamic power:   %.3f mW\n", res.DynamicPower*1e3)
	fmt.Printf("  leakage power:   %.4f mW\n", res.LeakagePower*1e3)
	fmt.Printf("  area:            %.4f mm²\n", res.Area*1e6)
	fmt.Printf("  wire R (bit):    %.1f Ω   wire C (bit): %.1f fF\n",
		res.WireResistance, res.WireCapacitance*1e15)

	if *golden {
		fmt.Println("  running golden sign-off analysis...")
		g, err := predint.GoldenLinkDelay(*techFlag, res.RepeaterSize, res.Repeaters, *lengthFlag, predint.Style(*styleFlag), *slewFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "link: golden:", err)
			os.Exit(1)
		}
		fmt.Printf("  golden delay:    %.1f ps (model error %+.1f%%)\n", g*1e12, (res.Delay-g)/g*100)
	}
}
