package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm", "-length", "5"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"90nm", "buffering:", "delay:", "dynamic power:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "flag") {
		t.Errorf("no usage/diagnostic on stderr: %s", errOut.String())
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
}

// TestRunTimeoutExpired pins that an already-expired deadline aborts
// the design with the context error before any output.
func TestRunTimeoutExpired(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-length", "5", "-timeout", "1ns"}, &out, &errOut)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if out.Len() != 0 {
		t.Errorf("partial output despite expired deadline: %s", out.String())
	}
}

// TestRunMetricsSnapshot checks the -metrics dump is valid JSON.
func TestRunMetricsSnapshot(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm", "-length", "5", "-metrics"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(errOut.Bytes(), &snap); err != nil {
		t.Fatalf("-metrics stderr is not JSON: %v\n%s", err, errOut.String())
	}
}
