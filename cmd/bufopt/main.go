// Command bufopt regenerates the Section III-D buffering-scheme
// study: delay-optimal versus power-weighted buffering (the paper's
// "power can be reduced by 20% at the cost of just above 2%
// degradation in delay") and staggered repeater insertion (Miller
// factor zero).
//
// Usage:
//
//	bufopt [-tech 90nm,65nm,45nm] [-length 10] [-weight 0.6]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	techFlag := flag.String("tech", "90nm,65nm,45nm", "comma-separated technologies")
	lengthFlag := flag.Float64("length", 10, "line length in mm")
	weightFlag := flag.Float64("weight", 0.6, "power weight of the objective")
	flag.Parse()

	rows, err := experiments.BufferingStudy(experiments.BufferingConfig{
		Techs:       strings.Split(*techFlag, ","),
		LengthMM:    *lengthFlag,
		PowerWeight: *weightFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bufopt:", err)
		os.Exit(1)
	}

	fmt.Printf("BUFFERING-SCHEME STUDY (%.0f mm line, power weight %.2f)\n\n", *lengthFlag, *weightFlag)
	fmt.Printf("%-6s %-14s %5s %6s %10s %10s\n", "tech", "design", "N", "size", "delay[ps]", "power[mW]")
	for _, r := range rows {
		fmt.Printf("%-6s %-14s %5d %6g %10.1f %10.3f\n",
			r.Tech, "delay-optimal", r.DelayOpt.N, r.DelayOpt.Size, r.DelayOpt.Delay*1e12, r.DelayOpt.Power.Total()*1e3)
		fmt.Printf("%-6s %-14s %5d %6g %10.1f %10.3f\n",
			r.Tech, "power-weighted", r.Weighted.N, r.Weighted.Size, r.Weighted.Delay*1e12, r.Weighted.Power.Total()*1e3)
		fmt.Printf("%-6s %-14s %5d %6g %10.1f %10.3f\n",
			r.Tech, "staggered", r.Staggered.N, r.Staggered.Size, r.Staggered.Delay*1e12, r.Staggered.Power.Total()*1e3)
		fmt.Printf("%-6s   -> power saving %.1f%% for %.1f%% delay cost; staggering gains %.1f%% delay\n",
			r.Tech, r.PowerSaving*100, r.DelayCost*100, r.StaggerDelayGain*100)
	}
	fmt.Println()
	fmt.Println("(paper: ~20% power reduction for just above 2% delay degradation;")
	fmt.Println(" this reproduction lands at ~8-16% for single-digit delay cost — same")
	fmt.Println(" many-to-one shape, see EXPERIMENTS.md)")
}
