package predint

// Custom-technology registration tests. They mutate the process-wide
// technology registry, so this file is named to sort (and therefore
// run) after the other root-package tests, which assert the pristine
// built-in set.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tech"
)

// customNodeJSON builds a valid descriptor by exporting 32nm and
// renaming it.
func customNodeJSON(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tech.MustLookup("32nm").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return strings.Replace(buf.String(), `"Name": "32nm"`, `"Name": "`+name+`"`, 1)
}

func TestLoadTechnologyAndDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes a custom node")
	}
	name, err := LoadTechnology(strings.NewReader(customNodeJSON(t, "custom32")))
	if err != nil {
		t.Fatal(err)
	}
	if name != "custom32" {
		t.Fatalf("registered as %q", name)
	}
	// The custom node must be fully usable: first DesignLink
	// auto-calibrates.
	res, err := DesignLink(LinkRequest{Tech: "custom32", LengthMM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 || res.Repeaters < 1 {
		t.Fatalf("degenerate custom-node design %+v", res)
	}
	// Identical physics to 32nm: the designs must match.
	ref, err := DesignLink(LinkRequest{Tech: "32nm", LengthMM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rel := (res.Delay - ref.Delay) / ref.Delay; rel > 0.02 || rel < -0.02 {
		t.Fatalf("clone node delay %g deviates from 32nm %g", res.Delay, ref.Delay)
	}
}

func TestLoadTechnologyRejects(t *testing.T) {
	if _, err := LoadTechnology(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Re-registering a built-in name must fail.
	var buf bytes.Buffer
	if err := tech.MustLookup("90nm").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTechnology(&buf); err == nil {
		t.Fatal("duplicate name accepted")
	}
}
