package predint

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/buffering"
	"repro/internal/estimator"
	"repro/internal/surface"
	"repro/internal/variation"
)

// This file wires the yield-response-surface cache (internal/surface)
// into the facade: completed Monte Carlo estimations are memoized per
// link class, and later queries on the same class at nearby targets are
// answered by interpolation with a conservative confidence band instead
// of burning a fresh sample budget. The cache is strictly opt-in
// (EnableSurface) and strictly an acceleration: a query the surface
// cannot answer within tolerance runs the full Monte Carlo kernel and
// is bit-identical to what it would have been with the surface off.

// YieldResult.Source values, naming the tier that produced the answer.
const (
	// SourceMC marks a full Monte Carlo estimation.
	SourceMC = "mc"
	// SourceNominal marks the degraded closed-form nominal evaluation.
	SourceNominal = "nominal"
	// SourceSurface marks a warm answer interpolated from the
	// yield-response-surface cache.
	SourceSurface = "surface"
)

// surfaceCache is the process-wide surface, nil while disabled. The
// pointer is swapped atomically so enable/disable is safe against
// concurrent queries (in-flight requests finish against the cache they
// loaded).
var surfaceCache atomic.Pointer[surface.Cache]

// EnableSurface installs a fresh yield-response-surface cache with the
// default sizing and tolerances, replacing any previous one, and
// returns it (for stats, invalidation, or warm-up). The surface starts
// disabled: long-lived servers opt in, one-shot estimations and
// determinism-sensitive tests keep the exact historical behavior.
func EnableSurface() *surface.Cache {
	c := surface.New(surface.Options{})
	surfaceCache.Store(c)
	return c
}

// DisableSurface removes the installed cache; subsequent queries run
// the full kernel unconditionally.
func DisableSurface() { surfaceCache.Store(nil) }

// SurfaceEnabled reports whether a surface cache is installed.
func SurfaceEnabled() bool { return surfaceCache.Load() != nil }

// ActiveSurface returns the installed cache, or nil while disabled.
func ActiveSurface() *surface.Cache { return surfaceCache.Load() }

// Surfaced binds the yield facade to an explicit surface cache instead
// of the process-wide one: each method behaves exactly like its
// package-level namesake with Cache installed (or, with a nil Cache,
// like the surface-off path). Multi-replica deployments need this —
// every predintd replica owns its own cache so invalidation and
// version counters are per-replica state the coordinator can compare,
// not hidden process globals. The package-level functions delegate
// here with whatever EnableSurface installed.
type Surfaced struct {
	Cache *surface.Cache
}

// Version reports the bound cache's invalidation version (0 with no
// cache). Two replicas may only exchange surface answers when their
// versions match — see the coordinator's shard protocol.
func (sf Surfaced) Version() uint64 {
	if sf.Cache == nil {
		return 0
	}
	return sf.Cache.Version()
}

// RecordYield feeds a completed full-sampling yield result back into
// the bound cache, exactly as the local estimation path would have: the
// coordinator calls it on the replica that owns the request's link
// class, so repeated traffic warms a stable shard. Degraded, surface,
// and resized results are refused — only a fresh Monte Carlo estimate
// of the nominal design is a valid curve point plus design memo.
func (sf Surfaced) RecordYield(req YieldRequest, res YieldResult) error {
	if sf.Cache == nil {
		return errors.New("predint: RecordYield needs a bound surface cache")
	}
	if res.Degraded || res.Source != SourceMC {
		return fmt.Errorf("predint: refusing to record a %q result — only full Monte Carlo estimates enter the surface", res.Source)
	}
	p, err := req.plan()
	if err != nil {
		return err
	}
	est := variation.Estimate{
		FailProb:          res.FailProb,
		Yield:             res.Yield,
		StdErr:            res.StdErr,
		Samples:           res.Samples,
		Shifted:           res.ImportanceSampled,
		Estimator:         estimator.Kind(res.Estimator),
		VarianceReduction: res.VarianceReduction,
	}
	des := buffering.Design{Size: res.RepeaterSize, N: res.Repeaters, Delay: res.NominalDelay}
	p.surfaceRecord(sf.Cache, des, est, p.yt == nil && !res.Resized)
	return nil
}

// surfaceKey derives the link-class key of a validated plan: everything
// that changes the estimated quantity is in it — the technology (by
// descriptor hash), the routed geometry and style, the slew and power
// weight shaping the buffering, and the scaled variation space. Seed
// and Sampler stay out: both change the realized draws, not the
// estimand, and the band gate already bounds a warm answer's error.
func (p *yieldPlan) surfaceKey() surface.Key {
	return surface.Key{
		TechHash:    surface.TechHash(p.tc),
		Geom:        surface.GeometryOf(p.seg),
		InputSlew:   p.slew,
		PowerWeight: p.bufOpts.PowerWeight,
		Space:       p.space,
	}
}

// surfaceTol maps the request's stopping tolerances onto the warm-answer
// acceptance band: a caller who would have stopped sampling at this
// error accepts a warm answer within the same error. Zero tolerances
// fall back to the cache's conservative defaults.
func (p *yieldPlan) surfaceTol() surface.Tolerance {
	// MinSamples carries the request's sample budget: an exact-target
	// recall that already spent it is served verbatim even when its
	// band is wider than the (default) tolerance — a fresh run could
	// only reproduce it.
	// Estimator carries an explicitly pinned rung: such a query is
	// never served a point a different rung produced. Auto (routed)
	// queries accept any stored rung — the band gate already bounds
	// the answer's error.
	return surface.Tolerance{
		RelErr:     p.mc.RelErr,
		AbsErr:     p.mc.AbsErr,
		MinSamples: p.mc.Samples,
		Estimator:  p.mc.Estimator,
	}
}

// surfaceAnswer tries to answer the plan's query entirely from the warm
// surface: the memoized nominal design skips the candidate sweep and
// the design's curve supplies the estimate. Misses when either memo is
// cold or the conservative band exceeds the tolerance.
func (p *yieldPlan) surfaceAnswer(c *surface.Cache) (YieldResult, bool) {
	k := p.surfaceKey()
	d, ok := c.DesignFor(k)
	if !ok {
		return YieldResult{}, false
	}
	est, ok := c.Lookup(k, surface.DesignKey{Size: d.Size, N: d.N}, p.target, p.surfaceTol())
	if !ok {
		return YieldResult{}, false
	}
	return YieldResult{
		Repeaters:         d.N,
		RepeaterSize:      d.Size,
		NominalDelay:      d.Delay,
		Target:            p.target,
		Yield:             1 - est.FailProb,
		FailProb:          est.FailProb,
		StdErr:            est.StdErr,
		CI95:              est.CI95(),
		Samples:           est.Samples,
		ImportanceSampled: est.Shifted,
		Estimator:         string(est.Estimator),
		Source:            SourceSurface,
	}, true
}

// surfaceRecord refreshes the surface from a completed Monte Carlo
// estimation. memoDesign is set only when des is the nominal
// weighted-objective design (the one a later warm query would be asking
// about); yield-target-sized designs contribute their curve point but
// never the design memo.
func (p *yieldPlan) surfaceRecord(c *surface.Cache, des buffering.Design, est variation.Estimate, memoDesign bool) {
	k := p.surfaceKey()
	if memoDesign {
		c.RecordDesign(k, surface.Design{Size: des.Size, N: des.N, Delay: des.Delay})
	}
	c.Record(k, surface.DesignKey{Size: des.Size, N: des.N}, surface.Sample{
		Target:    p.target,
		FailProb:  est.FailProb,
		StdErr:    est.StdErr,
		Samples:   est.Samples,
		Shifted:   est.Shifted,
		Estimator: est.Estimator,
	})
}

// LinkYieldSurface probes the warm surface alone: ok reports whether
// the request could be answered from the cache within tolerance, with
// no sampling fallback. The serving layer uses it as the first tier of
// its degradation ladder — a warm answer is cheaper than even the
// closed-form nominal evaluation, so it is consulted before any
// cost-ceiling or queue-pressure decision. Requests with a YieldTarget
// (sizing) always miss; so does everything while the surface is
// disabled or the request opts out.
func LinkYieldSurface(req YieldRequest) (YieldResult, bool, error) {
	return LinkYieldSurfaceCtx(context.Background(), req)
}

// LinkYieldSurfaceCtx is LinkYieldSurface under a context; only an
// up-front check applies, as a probe never samples.
func LinkYieldSurfaceCtx(ctx context.Context, req YieldRequest) (YieldResult, bool, error) {
	return Surfaced{Cache: surfaceCache.Load()}.LinkYieldSurfaceCtx(ctx, req)
}

// LinkYieldSurfaceCtx probes the bound cache; see the package-level
// LinkYieldSurface for the miss conditions.
func (sf Surfaced) LinkYieldSurfaceCtx(ctx context.Context, req YieldRequest) (YieldResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return YieldResult{}, false, err
	}
	if sf.Cache == nil || req.NoSurface || req.YieldTarget != nil {
		return YieldResult{}, false, nil
	}
	p, err := req.plan()
	if err != nil {
		return YieldResult{}, false, err
	}
	res, ok := p.surfaceAnswer(sf.Cache)
	return res, ok, nil
}

// LinkYieldBatchSurface is the batch probe, all-or-nothing: it answers
// only when every candidate's curve is warm at the target within
// tolerance, so a batch response never silently mixes cached and
// freshly sampled estimates (whose common-random-numbers comparability
// would differ).
func LinkYieldBatchSurface(req YieldBatchRequest) (YieldBatchResult, bool, error) {
	return LinkYieldBatchSurfaceCtx(context.Background(), req)
}

// LinkYieldBatchSurfaceCtx is LinkYieldBatchSurface under a context.
func LinkYieldBatchSurfaceCtx(ctx context.Context, req YieldBatchRequest) (YieldBatchResult, bool, error) {
	return Surfaced{Cache: surfaceCache.Load()}.LinkYieldBatchSurfaceCtx(ctx, req)
}

// LinkYieldBatchSurfaceCtx probes the bound cache for a whole batch,
// all-or-nothing; see the package-level LinkYieldBatchSurface.
func (sf Surfaced) LinkYieldBatchSurfaceCtx(ctx context.Context, req YieldBatchRequest) (YieldBatchResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return YieldBatchResult{}, false, err
	}
	cache := sf.Cache
	if cache == nil || req.NoSurface {
		return YieldBatchResult{}, false, nil
	}
	if err := req.validateBatch(); err != nil {
		return YieldBatchResult{}, false, err
	}
	p, err := req.YieldRequest.plan()
	if err != nil {
		return YieldBatchResult{}, false, err
	}
	_, noms, err := p.batchSpecs(req.Candidates)
	if err != nil {
		return YieldBatchResult{}, false, err
	}
	out, ok := p.surfaceBatchAnswer(cache, req.Candidates, noms)
	return out, ok, nil
}

// surfaceBatchAnswer answers a batch from the warm surface,
// all-or-nothing: ok only when every candidate's curve covers the
// target within tolerance.
func (p *yieldPlan) surfaceBatchAnswer(cache *surface.Cache, cands []YieldCandidate, noms []float64) (YieldBatchResult, bool) {
	k := p.surfaceKey()
	tol := p.surfaceTol()
	out := YieldBatchResult{Target: p.target, Results: make([]YieldResult, len(cands))}
	for c, cand := range cands {
		est, ok := cache.Lookup(k, surface.DesignKey{Size: cand.RepeaterSize, N: cand.Repeaters}, p.target, tol)
		if !ok {
			return YieldBatchResult{}, false
		}
		out.Results[c] = YieldResult{
			Repeaters:         cand.Repeaters,
			RepeaterSize:      cand.RepeaterSize,
			NominalDelay:      noms[c],
			Target:            p.target,
			Yield:             1 - est.FailProb,
			FailProb:          est.FailProb,
			StdErr:            est.StdErr,
			CI95:              est.CI95(),
			Samples:           est.Samples,
			ImportanceSampled: est.Shifted,
			Estimator:         string(est.Estimator),
			Source:            SourceSurface,
		}
	}
	return out, true
}
