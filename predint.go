package predint

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/buffering"
	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/wire"
	"repro/internal/wiresize"
)

// Style selects a bus design style for link requests.
type Style string

// Supported design styles.
const (
	// SWSS is single-width single-spacing with worst-case switching
	// neighbors.
	SWSS Style = "swss"
	// Shielded interleaves grounded shields between signal wires.
	Shielded Style = "shielded"
	// Staggered staggers repeaters to neutralize cross-talk (Miller
	// factor zero).
	Staggered Style = "staggered"
)

func (s Style) wireStyle() (wire.Style, error) {
	switch s {
	case "", SWSS:
		return wire.SWSS, nil
	case Shielded:
		return wire.Shielded, nil
	case Staggered:
		return wire.Staggered, nil
	default:
		return 0, fmt.Errorf("predint: unknown style %q", s)
	}
}

// Technologies returns the built-in technology names, largest node
// first: 90nm, 65nm, 45nm, 32nm, 22nm, 16nm.
func Technologies() []string { return tech.Names() }

// TechInfo summarizes one technology node.
type TechInfo struct {
	Name    string
	Feature float64 // m
	Vdd     float64 // V
	Clock   float64 // Hz (the paper's NoC operating point)
	// LowPower reports whether the node is a low-power flavor (the
	// 45nm node, per the paper).
	LowPower bool
}

// Tech returns summary information for a built-in technology.
func Tech(name string) (TechInfo, error) {
	tc, err := tech.Lookup(name)
	if err != nil {
		return TechInfo{}, err
	}
	return TechInfo{
		Name:     tc.Name,
		Feature:  tc.Feature,
		Vdd:      tc.Vdd,
		Clock:    tc.Clock,
		LowPower: tc.Flavor == tech.LowPower,
	}, nil
}

// Default values applied to unset (nil) optional LinkRequest fields.
const (
	// DefaultBits is the bus width of the paper's designs.
	DefaultBits = 128
	// DefaultPowerWeight is the buffering objective's power emphasis.
	DefaultPowerWeight = 0.5
	// DefaultActivityFactor is the switching activity for power.
	DefaultActivityFactor = 0.15
	// DefaultInputSlewPS is the paper's input stimulus in picoseconds.
	DefaultInputSlewPS = 300.0
)

// Float wraps a value for LinkRequest's optional float fields:
// predint.Float(0) requests an explicit zero, which a plain zero
// value cannot (it means "use the default").
func Float(v float64) *float64 { return &v }

// Int wraps a value for LinkRequest's optional int fields.
func Int(v int) *int { return &v }

// LinkRequest describes a buffered global link to design.
//
// The optional numeric fields are pointers so the zero value of the
// struct keeps meaning "all defaults" while an explicit zero remains
// expressible: nil selects the documented default, predint.Float(0)
// (or predint.Int(0)) is honored as a literal zero. Earlier versions
// used plain floats and silently rewrote zeros to the defaults, which
// made an explicit zero impossible to request.
type LinkRequest struct {
	// Tech is a built-in technology name (required).
	Tech string
	// LengthMM is the routed link length in millimeters (required).
	LengthMM float64
	// Bits is the bus width; nil means DefaultBits (128, the paper's
	// designs). An explicit non-positive width is an error, not a
	// request for the default.
	Bits *int
	// Style selects the design style; default SWSS.
	Style Style
	// PowerWeight ∈ [0,1) sets the buffering objective's power
	// emphasis; nil means DefaultPowerWeight (0.5). An explicit
	// Float(0) is honored: it requests pure delay-optimal buffering.
	PowerWeight *float64
	// DelayOptimal forces pure delay-optimal buffering regardless of
	// PowerWeight.
	DelayOptimal bool
	// LibrarySizesOnly restricts repeater candidates to the
	// characterized library drive strengths (D4–D20), so the result
	// can be re-evaluated with GoldenLinkDelay. By default the
	// optimizer may also pick the larger extrapolated sizes a
	// delay-optimal solution wants.
	LibrarySizesOnly bool
	// OptimizeGeometry additionally searches wire width and spacing
	// (up to MaxPitchMult × the minimum pitch) jointly with the
	// buffering — the Shi–Pan wire-sizing extension.
	OptimizeGeometry bool
	// MaxPitchMult bounds (width+spacing)/minimum-pitch when
	// OptimizeGeometry is set; default 3.
	MaxPitchMult float64
	// ActivityFactor is the switching activity for power; nil means
	// DefaultActivityFactor (0.15). An explicit Float(0) is honored:
	// the link reports zero dynamic power. Negative values are an
	// error.
	ActivityFactor *float64
	// InputSlewPS is the input transition time in picoseconds; nil
	// means DefaultInputSlewPS (300, the paper's stimulus). An
	// explicit Float(0) is honored by rejecting the request with an
	// error — the timing models are only defined for a positive
	// stimulus — rather than silently substituting the default.
	InputSlewPS *float64
}

// LinkResult is a designed link with the model's predictions.
type LinkResult struct {
	// Repeaters and RepeaterSize describe the buffering solution
	// (size in unit-inverter multiples).
	Repeaters    int
	RepeaterSize float64
	// Delay is the predicted worst-edge delay (s).
	Delay float64
	// OutputSlew is the predicted receiver slew (s).
	OutputSlew float64
	// DynamicPower and LeakagePower are whole-bus powers (W).
	DynamicPower, LeakagePower float64
	// Area is the whole-bus silicon area (m²), wiring plus
	// repeaters.
	Area float64
	// WireResistance and WireCapacitance are the per-bit totals
	// (Ω, F) including the nanometer corrections.
	WireResistance, WireCapacitance float64
	// WidthMult and SpacingMult report the wire geometry (1 = layer
	// minimums; other values only when OptimizeGeometry was set).
	WidthMult, SpacingMult float64
}

// DesignLink designs a buffered link with the paper's calibrated
// predictive models and buffering optimizer.
func DesignLink(req LinkRequest) (LinkResult, error) {
	return DesignLinkCtx(context.Background(), req)
}

// DesignLinkCtx is DesignLink under a context. A plain buffering
// search is fast enough that only an up-front check applies, but with
// OptimizeGeometry the joint geometry × buffering sweep checks for
// cancellation at each candidate, so a deadline-bound caller gets
// ctx.Err() instead of waiting the sweep out. A design that completes
// under a live context is identical to DesignLink's.
func DesignLinkCtx(ctx context.Context, req LinkRequest) (LinkResult, error) {
	if err := ctx.Err(); err != nil {
		return LinkResult{}, err
	}
	tc, err := tech.Lookup(req.Tech)
	if err != nil {
		return LinkResult{}, err
	}
	if req.LengthMM <= 0 {
		return LinkResult{}, fmt.Errorf("predint: non-positive length %g mm", req.LengthMM)
	}
	style, err := req.Style.wireStyle()
	if err != nil {
		return LinkResult{}, err
	}
	bits := DefaultBits
	if req.Bits != nil {
		bits = *req.Bits
		if bits <= 0 {
			return LinkResult{}, fmt.Errorf("predint: non-positive bus width %d", bits)
		}
	}
	activity := DefaultActivityFactor
	if req.ActivityFactor != nil {
		activity = *req.ActivityFactor
		if math.IsNaN(activity) || activity < 0 {
			return LinkResult{}, fmt.Errorf("predint: negative activity factor %g", activity)
		}
	}
	slewPS := DefaultInputSlewPS
	if req.InputSlewPS != nil {
		slewPS = *req.InputSlewPS
		if math.IsNaN(slewPS) || slewPS <= 0 {
			return LinkResult{}, fmt.Errorf("predint: non-positive input slew %g ps (the timing models need a positive stimulus; omit InputSlewPS for the %g ps default)", slewPS, DefaultInputSlewPS)
		}
	}
	slew := slewPS * 1e-12
	weight := DefaultPowerWeight
	if req.PowerWeight != nil {
		weight = *req.PowerWeight
		if math.IsNaN(weight) || weight < 0 || weight >= 1 {
			return LinkResult{}, fmt.Errorf("predint: power weight %g outside [0,1)", weight)
		}
	}
	if req.DelayOptimal {
		weight = 0
	}

	coeffs, err := coefficientsFor(tc)
	if err != nil {
		return LinkResult{}, err
	}
	seg := wire.NewSegment(tc, req.LengthMM*1e-3, style)
	opts := buffering.Options{
		Coeffs:      coeffs,
		InputSlew:   slew,
		Power:       model.PowerParams{Activity: activity, Freq: tc.Clock},
		PowerWeight: weight,
	}
	if req.LibrarySizesOnly {
		opts.Sizes = liberty.StandardSizes
	}
	widthMult, spacingMult := 1.0, 1.0
	var des buffering.Design
	if req.OptimizeGeometry {
		wsDes, err := wiresize.OptimizeCtx(ctx, tc, seg.Length, style, wiresize.Options{
			Buffering:    opts,
			MaxPitchMult: req.MaxPitchMult,
		})
		if err != nil {
			return LinkResult{}, err
		}
		des = wsDes.Buffer
		widthMult, spacingMult = wsDes.WidthMult, wsDes.SpacingMult
		seg.Width *= widthMult
		seg.Spacing *= spacingMult
	} else {
		var err error
		des, err = buffering.Optimize(seg, opts)
		if err != nil {
			return LinkResult{}, err
		}
	}
	spec := model.LineSpec{Kind: des.Kind, Size: des.Size, N: des.N, Segment: seg, InputSlew: slew}
	pow, err := coeffs.LinePower(spec, model.PowerParams{Activity: activity, Freq: tc.Clock})
	if err != nil {
		return LinkResult{}, err
	}
	area, err := coeffs.LineArea(spec, bits)
	if err != nil {
		return LinkResult{}, err
	}
	return LinkResult{
		Repeaters:       des.N,
		RepeaterSize:    des.Size,
		Delay:           des.Delay,
		OutputSlew:      des.OutputSlew,
		DynamicPower:    pow.Dynamic * float64(bits),
		LeakagePower:    pow.Leakage * float64(bits),
		Area:            area.Total(),
		WireResistance:  seg.Resistance(),
		WireCapacitance: seg.TotalCap(),
		WidthMult:       widthMult,
		SpacingMult:     spacingMult,
	}, nil
}

// GoldenLinkDelay evaluates a specific buffered-line implementation
// with the golden sign-off timing engine (NLDM cells + transient RC
// interconnect analysis), driven by the given input slew in
// picoseconds — pass the same stimulus the link was designed with
// (DefaultInputSlewPS when the LinkRequest left InputSlewPS unset) so
// the golden re-evaluation matches the predictive path; earlier
// versions hardcoded 300 ps regardless of the request. The slew must
// be positive: the transient engine cannot drive a zero-time ramp.
// GoldenLinkDelay characterizes the technology's cell library on
// first use, which takes a few seconds per node.
func GoldenLinkDelay(techName string, repeaterSize float64, repeaters int, lengthMM float64, style Style, inputSlewPS float64) (float64, error) {
	tc, err := tech.Lookup(techName)
	if err != nil {
		return 0, err
	}
	ws, err := style.wireStyle()
	if err != nil {
		return 0, err
	}
	if math.IsNaN(inputSlewPS) || inputSlewPS <= 0 {
		return 0, fmt.Errorf("predint: non-positive input slew %g ps", inputSlewPS)
	}
	lib, err := liberty.Get(tc)
	if err != nil {
		return 0, err
	}
	cell := lib.Cell(fmt.Sprintf("INVD%g", repeaterSize))
	if cell == nil {
		return 0, fmt.Errorf("predint: no characterized cell of size %g (library sizes: %v)", repeaterSize, liberty.StandardSizes)
	}
	line := &sta.Line{Cell: cell, N: repeaters, Segment: wire.NewSegment(tc, lengthMM*1e-3, ws), InputSlew: inputSlewPS * 1e-12}
	res, err := line.Analyze()
	if err != nil {
		return 0, err
	}
	return res.Delay, nil
}

// Coefficients is the calibrated model coefficient set (the paper's
// Table I for one technology). Obtain one from EmbeddedCoefficients or
// Calibrate; treat it as opaque and pass it back into this package.
type Coefficients = model.Coefficients

// LoadTechnology reads a JSON technology descriptor (see
// `techinfo -json` for the format), validates it, and registers it so
// every entry point in this package can use it by name. Custom nodes
// have no embedded Table I coefficients; the first DesignLink against
// one triggers a full characterization + calibration (a few seconds)
// which is then cached for the process.
func LoadTechnology(r io.Reader) (name string, err error) {
	t, err := tech.LoadJSON(r)
	if err != nil {
		return "", err
	}
	if err := tech.Register(t); err != nil {
		return "", err
	}
	return t.Name, nil
}

// calibCache memoizes live calibrations for technologies without
// embedded coefficients. The mutex guards only the entry lookup; the
// seconds-long characterization + regression runs under the entry's
// Once, so concurrent DesignLink calls against different custom nodes
// calibrate in parallel while duplicate requests for one node share a
// single computation. Calibration is deterministic, so failures are
// memoized alongside successes.
var (
	calibMu    sync.Mutex
	calibCache = map[string]*calibEntry{}
)

type calibEntry struct {
	once sync.Once
	c    *model.Coefficients
	err  error
}

// coefficientsFor returns embedded coefficients when available,
// falling back to a cached live calibration for custom nodes.
func coefficientsFor(tc *tech.Technology) (*model.Coefficients, error) {
	if c, err := model.Default(tc.Name); err == nil {
		return c, nil
	}
	calibMu.Lock()
	e, ok := calibCache[tc.Name]
	if !ok {
		e = &calibEntry{}
		calibCache[tc.Name] = e
	}
	calibMu.Unlock()
	e.once.Do(func() {
		lib, err := liberty.Get(tc)
		if err != nil {
			e.err = err
			return
		}
		e.c, _, e.err = model.Calibrate(lib)
	})
	return e.c, e.err
}

// EmbeddedCoefficients returns the pre-calibrated (shipped) Table I
// coefficients for a built-in technology.
func EmbeddedCoefficients(techName string) (*Coefficients, error) {
	return model.Default(techName)
}

// Calibrate runs the full calibration pipeline for a built-in
// technology: characterize its repeater library with the circuit
// simulator (memoized per process; a few seconds per node on first
// use), then fit every model coefficient by regression.
func Calibrate(techName string) (*Coefficients, error) {
	tc, err := tech.Lookup(techName)
	if err != nil {
		return nil, err
	}
	lib, err := liberty.Get(tc)
	if err != nil {
		return nil, err
	}
	coeffs, _, err := model.Calibrate(lib)
	return coeffs, err
}

// ExportLibrary characterizes a built-in technology's repeater library
// (memoized) and writes it in Liberty text format — the artifact the
// paper's flow consumes from foundries.
func ExportLibrary(techName string, w io.Writer) error {
	tc, err := tech.Lookup(techName)
	if err != nil {
		return err
	}
	lib, err := liberty.Get(tc)
	if err != nil {
		return err
	}
	return liberty.WriteLibrary(w, lib)
}

// CalibrateFromLibrary reads a Liberty text file (as produced by
// ExportLibrary, or a compatible subset) and fits the model
// coefficients against it — calibration against an externally
// supplied library, with no simulation involved.
func CalibrateFromLibrary(r io.Reader) (*Coefficients, error) {
	lib, err := liberty.ParseLibrary(r)
	if err != nil {
		return nil, err
	}
	coeffs, _, err := model.Calibrate(lib)
	return coeffs, err
}

// CrosstalkRequest configures an explicit coupled-line study.
type CrosstalkRequest struct {
	// Tech is a technology name.
	Tech string
	// LengthMM is the victim length in millimeters.
	LengthMM float64
	// SpacingMult scales the neighbor spacing (1 = minimum).
	SpacingMult float64
	// Aggressors selects the neighbors' activity: "opposite"
	// (worst case), "same", or "quiet" (default).
	Aggressors string
}

// CrosstalkResult reports a coupled-line study.
type CrosstalkResult struct {
	// Delay is the victim's simulated 50% delay (s).
	Delay float64
	// OutputSlew is the victim's far-end slew (s).
	OutputSlew float64
	// EffectiveMiller is the empirical Miller factor: the k for
	// which an uncoupled line with c_g + k·c_c matches this delay.
	// The paper's model uses λ = 1.51; sign-off uses 2.0.
	EffectiveMiller float64
}

// Crosstalk runs a full coupled three-line transient simulation (the
// victim with two aggressors) — the physics underneath the Miller
// abstractions the models use.
func Crosstalk(req CrosstalkRequest) (CrosstalkResult, error) {
	tc, err := tech.Lookup(req.Tech)
	if err != nil {
		return CrosstalkResult{}, err
	}
	if req.LengthMM <= 0 {
		return CrosstalkResult{}, fmt.Errorf("predint: non-positive length")
	}
	mode := sta.Quiet
	switch req.Aggressors {
	case "", "quiet":
	case "opposite":
		mode = sta.Opposite
	case "same":
		mode = sta.Same
	default:
		return CrosstalkResult{}, fmt.Errorf("predint: unknown aggressor mode %q", req.Aggressors)
	}
	seg := wire.NewSegment(tc, req.LengthMM*1e-3, wire.SWSS)
	if req.SpacingMult > 0 {
		seg.Spacing *= req.SpacingMult
	}
	cfg := sta.CoupledConfig{
		Seg:     seg,
		DriverR: 200,
		LoadC:   10e-15,
		InSlew:  100e-12,
		Mode:    mode,
	}
	d, s, err := sta.SimulateCoupled(cfg)
	if err != nil {
		return CrosstalkResult{}, err
	}
	k, err := sta.EffectiveMiller(cfg)
	if err != nil {
		return CrosstalkResult{}, err
	}
	return CrosstalkResult{Delay: d, OutputSlew: s, EffectiveMiller: k}, nil
}

// NoCRequest describes a NoC synthesis run.
type NoCRequest struct {
	// Case is a built-in test case name: "VPROC" or "DVOPD".
	Case string
	// Tech is a built-in technology name.
	Tech string
	// UseOriginalModel selects the uncalibrated Bakoglu-based cost
	// model instead of the proposed one (Table III's comparison).
	UseOriginalModel bool
	// Style selects the bus design style; default SWSS.
	Style Style
	// SimulateTraffic additionally runs the cycle-based traffic
	// simulation on the synthesized network and fills
	// NoCResult.Traffic.
	SimulateTraffic bool
	// Workers bounds the goroutines the synthesizer's merge-candidate
	// evaluation uses: 0 means every core, 1 forces the serial
	// algorithm. The synthesized network is identical either way.
	Workers int
}

// NoCResult reports a synthesized network.
type NoCResult struct {
	// Metrics are the tool-reported power/area/hop figures.
	Metrics noc.Metrics
	// Links and Routers count topology elements (also in Metrics).
	Links, Routers int
	// MaxLinkLengthMM is the model's wire-length feasibility limit.
	MaxLinkLengthMM float64
	// Traffic holds the cycle-based simulation results when
	// NoCRequest.SimulateTraffic was set.
	Traffic *noc.SimResult
}

// SynthesizeNoC runs the COSI-style synthesis for a built-in test
// case.
func SynthesizeNoC(req NoCRequest) (NoCResult, error) {
	return SynthesizeNoCCtx(context.Background(), req)
}

// SynthesizeNoCCtx is SynthesizeNoC under a context: cancellation is
// cooperative (checked between flows and candidate batches inside the
// synthesizer), returns ctx.Err() promptly, and never poisons the
// underlying design caches — see noc.SynthesizeCtx. A run completing
// under a live context is bit-identical to SynthesizeNoC.
func SynthesizeNoCCtx(ctx context.Context, req NoCRequest) (NoCResult, error) {
	tc, err := tech.Lookup(req.Tech)
	if err != nil {
		return NoCResult{}, err
	}
	style, err := req.Style.wireStyle()
	if err != nil {
		return NoCResult{}, err
	}
	spec, err := noc.SpecByName(req.Case)
	if err != nil {
		return NoCResult{}, err
	}
	var lm noc.LinkModel
	if req.UseOriginalModel {
		lm, err = noc.NewOriginalModel(tc, spec.DataWidth, style)
	} else {
		lm, err = noc.NewProposedModel(tc, spec.DataWidth, style)
	}
	if err != nil {
		return NoCResult{}, err
	}
	net, err := noc.SynthesizeCtx(ctx, spec, lm, noc.SynthOptions{Workers: req.Workers})
	if err != nil {
		return NoCResult{}, err
	}
	m := net.Evaluate()
	res := NoCResult{
		Metrics:         m,
		Links:           m.Links,
		Routers:         m.Routers,
		MaxLinkLengthMM: lm.MaxLength() * 1e3,
	}
	if req.SimulateTraffic {
		sim, err := net.Simulate(noc.SimConfig{})
		if err != nil {
			return NoCResult{}, err
		}
		res.Traffic = sim
	}
	return res, nil
}
