package predint

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/buffering"
	"repro/internal/estimator"
	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/variation"
	"repro/internal/wire"
)

// This file is the facade over the process-variation engine
// (internal/variation): Monte Carlo timing-yield estimation for a
// designed link, optionally with the ISLE-style importance-sampling
// estimator for deep-tail failure probabilities, and yield-aware
// buffering that resizes the repeaters until a yield target holds.
// LinkYieldNominal is the graceful-degradation path the serving layer
// (cmd/predintd) falls back to when a cost budget or queue pressure
// won't allow sampling.

// Defaults applied to unset (nil) optional YieldRequest fields.
const (
	// DefaultYieldSamples is the Monte Carlo sample budget.
	DefaultYieldSamples = 4096
)

// Sentinel validation errors of the yield facade. Every rejection of a
// malformed delay/yield target, sigma level, or estimator name wraps
// the matching sentinel, so callers (and the serving layer) can
// classify failures with errors.Is instead of matching message text.
var (
	// ErrInvalidTarget rejects a delay target (TargetPS) or yield
	// target (YieldTarget) that is NaN, infinite, or outside its
	// documented range.
	ErrInvalidTarget = errors.New("predint: invalid target")
	// ErrInvalidSigma rejects a TargetSigma (or -sigma flag) that is
	// negative, NaN, or infinite.
	ErrInvalidSigma = errors.New("predint: invalid sigma")
	// ErrUnknownEstimator rejects an Estimator name outside the
	// registered ladder (see internal/estimator).
	ErrUnknownEstimator = errors.New("predint: unknown estimator")
	// ErrUnknownSampler rejects a Sampler name outside the known set
	// ("ziggurat", "box-muller").
	ErrUnknownSampler = errors.New("predint: unknown sampler")
)

// YieldRequest describes a timing-yield estimation for a buffered
// link. As with LinkRequest, optional numeric fields are pointers:
// nil selects the documented default while explicit values — including
// zeros — are honored or rejected, never silently rewritten.
type YieldRequest struct {
	// Tech is a built-in technology name (required).
	Tech string
	// LengthMM is the routed link length in millimeters (required).
	LengthMM float64
	// Style selects the design style; default SWSS.
	Style Style
	// PowerWeight and InputSlewPS configure the underlying buffering
	// exactly as in LinkRequest.
	PowerWeight *float64
	InputSlewPS *float64
	// TargetPS is the delay constraint in picoseconds; nil means the
	// node's clock period (1/Clock). An explicit non-positive target
	// is an error.
	TargetPS *float64
	// Samples is the Monte Carlo budget; nil means
	// DefaultYieldSamples (4096). An explicit non-positive count is
	// an error.
	Samples *int
	// RelErr, when set and positive, stops sampling early once the
	// estimator's relative standard error reaches it; nil (or an
	// explicit zero) runs the full budget. Negative values are an
	// error. A run with zero observed failures stops once the
	// rule-of-three bound 3/n reaches the tolerance (see
	// variation.Options.RelErr).
	RelErr *float64
	// AbsErr, when set and positive, stops sampling early once the
	// estimator's absolute standard error reaches it; nil (or an
	// explicit zero) disables the rule. Negative values are an error.
	AbsErr *float64
	// Seed is the base PRNG seed. Results are bit-identical for a
	// fixed seed regardless of Workers.
	Seed uint64
	// Workers bounds the sampling goroutines: 0 means every core, 1
	// forces serial evaluation. The estimate is identical either way.
	Workers int
	// ImportanceSampling selects the ISLE-style estimator (shifted
	// sampling distribution + likelihood-ratio weights). Use it when
	// the expected failure probability is small (≲ 1e-2); for common
	// failures plain Monte Carlo is already efficient and the engine
	// falls back to it automatically when shifting cannot help.
	//
	// Estimator and TargetSigma below subsume this switch; it remains
	// for compatibility and is equivalent to Estimator "isle".
	ImportanceSampling bool
	// Estimator pins a rung of the high-sigma estimator ladder by
	// name: "mc", "qmc", "isle", "ais", or "wcd" (the analytic
	// worst-case-distance bound — no sampling). Empty or "auto" lets
	// the engine route from TargetSigma (or fall back to the
	// historical default). Unknown names are rejected with
	// ErrUnknownEstimator.
	Estimator string
	// TargetSigma declares the sigma level the query must resolve
	// (e.g. 6 for a 6σ sign-off): the router picks the cheapest
	// estimator whose regime covers Φ(−TargetSigma), and auto-routed
	// deep-sigma queries (≥3σ) run the worst-case-distance pre-filter,
	// answering analytically when its certificate is conclusive.
	// nil means no declared level; explicit negative, NaN, or infinite
	// values are rejected with ErrInvalidSigma.
	TargetSigma *float64
	// Sampler pins the normal sampler behind the mc and isle rungs:
	// "ziggurat" (the default fast sampler) or "box-muller" (the
	// pinned legacy sequence — every estimate produced before the
	// ziggurat landed used it, so historical fixtures replay
	// bit-exactly under it). The qmc rung draws scrambled Sobol points
	// and ais keeps its own legacy stream, so both ignore the setting;
	// wcd does not sample at all. Unknown names are rejected with
	// ErrUnknownSampler. Like Seed, the sampler changes the realized
	// draws but not the estimated quantity.
	Sampler string
	// SigmaScale multiplies every sigma of the default variation
	// space; nil means 1. An explicit Float(0) is honored: it
	// disables variation, collapsing yield to a 0/1 step around the
	// target. Negative values are an error.
	SigmaScale *float64
	// YieldTarget, when set, turns the request into yield-aware
	// buffering: the repeater (size, count) is re-selected as the
	// cheapest design (under the nominal weighted objective) whose
	// estimated yield reaches the target. Must lie in (0,1).
	YieldTarget *float64
	// NoSurface bypasses the yield-response-surface cache entirely —
	// neither consulted nor refreshed — forcing the full Monte Carlo
	// path even while EnableSurface is in effect.
	NoSurface bool
}

// YieldResult reports a timing-yield estimation.
type YieldResult struct {
	// Repeaters and RepeaterSize describe the evaluated buffering
	// solution (resized when YieldTarget forced a change).
	Repeaters    int
	RepeaterSize float64
	// NominalDelay is the design's delay at the nominal process
	// corner (s); Target is the constraint it was scored against (s).
	NominalDelay float64
	Target       float64
	// Yield is the estimated probability of meeting Target; FailProb
	// its complement.
	Yield, FailProb float64
	// StdErr is the standard error of FailProb and CI95 the
	// half-width of its 95% confidence interval.
	StdErr, CI95 float64
	// Samples is the number of Monte Carlo samples evaluated.
	Samples int
	// ImportanceSampled reports whether the shifted estimator was in
	// effect (false when ImportanceSampling was requested but the
	// engine fell back to plain Monte Carlo).
	ImportanceSampled bool
	// Estimator names the ladder rung that produced the estimate
	// ("mc", "qmc", "isle", "ais", "wcd") — the routed choice for
	// auto requests, so a 6σ query can confirm it was actually served
	// by the deep-tail machinery. Empty on degraded (nominal) results.
	Estimator string
	// VarianceReduction is the estimated variance advantage over a
	// plain Monte Carlo estimator at the same sample count (≈1 for
	// plain Monte Carlo, >1 when importance sampling pays off).
	VarianceReduction float64
	// Resized reports whether YieldTarget moved the design away from
	// the nominal weighted-objective solution.
	Resized bool
	// Degraded reports that this result came from LinkYieldNominal —
	// the closed-form nominal-corner evaluation (model.ScaledFor with
	// no perturbation), not a Monte Carlo estimation. Yield is then a
	// 0/1 step around the target.
	Degraded bool
	// FailProbBound is only set on degraded results: the rule-of-three
	// 95% upper bound on the failure probability given the evaluations
	// actually performed, min(1, 3/n). With only the single nominal
	// evaluation it is 1 — deliberately vacuous, telling the caller
	// exactly how much statistical weight the degraded answer carries.
	FailProbBound float64
	// Source names the tier that produced the answer: SourceMC (full
	// Monte Carlo), SourceNominal (degraded closed form), or
	// SourceSurface (warm cache interpolation).
	Source string
}

// yieldPlan is a validated, derived YieldRequest: every optional
// field resolved, the technology and coefficients looked up, and the
// engine option structs built. Both the full Monte Carlo path and the
// degraded nominal path start from here, so the two can never drift
// in how they interpret a request.
type yieldPlan struct {
	tc      *tech.Technology
	coeffs  *model.Coefficients
	seg     wire.Segment
	bufOpts buffering.Options
	space   variation.Space
	mc      variation.YieldOptions
	target  float64
	slew    float64
	yt      *float64
}

// plan validates the request and derives the evaluation inputs.
func (req YieldRequest) plan() (*yieldPlan, error) {
	tc, err := tech.Lookup(req.Tech)
	if err != nil {
		return nil, err
	}
	if req.LengthMM <= 0 {
		return nil, fmt.Errorf("predint: non-positive length %g mm", req.LengthMM)
	}
	style, err := req.Style.wireStyle()
	if err != nil {
		return nil, err
	}
	weight := DefaultPowerWeight
	if req.PowerWeight != nil {
		weight = *req.PowerWeight
		if math.IsNaN(weight) || weight < 0 || weight >= 1 {
			return nil, fmt.Errorf("predint: power weight %g outside [0,1)", weight)
		}
	}
	slewPS := DefaultInputSlewPS
	if req.InputSlewPS != nil {
		slewPS = *req.InputSlewPS
		if math.IsNaN(slewPS) || slewPS <= 0 {
			return nil, fmt.Errorf("predint: non-positive input slew %g ps", slewPS)
		}
	}
	target := 1 / tc.Clock
	if req.TargetPS != nil {
		// IsInf matters: +Inf passes a bare <= 0 check and would turn
		// the estimation into a vacuous always-passes query.
		if math.IsNaN(*req.TargetPS) || math.IsInf(*req.TargetPS, 0) || *req.TargetPS <= 0 {
			return nil, fmt.Errorf("%w: delay target %g ps is not a positive finite value", ErrInvalidTarget, *req.TargetPS)
		}
		target = *req.TargetPS * 1e-12
	}
	samples := DefaultYieldSamples
	if req.Samples != nil {
		samples = *req.Samples
		if samples <= 0 {
			return nil, fmt.Errorf("predint: non-positive sample count %d", samples)
		}
	}
	relErr := 0.0
	if req.RelErr != nil {
		relErr = *req.RelErr
		if math.IsNaN(relErr) || relErr < 0 {
			return nil, fmt.Errorf("predint: negative relative-error target %g", relErr)
		}
	}
	absErr := 0.0
	if req.AbsErr != nil {
		absErr = *req.AbsErr
		if math.IsNaN(absErr) || absErr < 0 {
			return nil, fmt.Errorf("predint: negative absolute-error target %g", absErr)
		}
	}
	sigma := 1.0
	if req.SigmaScale != nil {
		sigma = *req.SigmaScale
		if math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 {
			return nil, fmt.Errorf("%w: sigma scale %g is not a non-negative finite value", ErrInvalidSigma, sigma)
		}
	}
	if req.YieldTarget != nil {
		yt := *req.YieldTarget
		if math.IsNaN(yt) || yt <= 0 || yt >= 1 {
			return nil, fmt.Errorf("%w: yield target %g outside (0,1)", ErrInvalidTarget, yt)
		}
	}
	kind, err := estimator.Parse(req.Estimator)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (known: auto, mc, qmc, isle, ais, wcd)", ErrUnknownEstimator, req.Estimator)
	}
	sampler, err := variation.ParseSampler(req.Sampler)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (known: ziggurat, box-muller)", ErrUnknownSampler, req.Sampler)
	}
	targetSigma := 0.0
	if req.TargetSigma != nil {
		targetSigma = *req.TargetSigma
		if math.IsNaN(targetSigma) || math.IsInf(targetSigma, 0) || targetSigma < 0 {
			return nil, fmt.Errorf("%w: target sigma %g is not a non-negative finite value", ErrInvalidSigma, targetSigma)
		}
	}

	coeffs, err := coefficientsFor(tc)
	if err != nil {
		return nil, err
	}
	slew := slewPS * 1e-12
	return &yieldPlan{
		tc:     tc,
		coeffs: coeffs,
		seg:    wire.NewSegment(tc, req.LengthMM*1e-3, style),
		bufOpts: buffering.Options{
			Coeffs:      coeffs,
			InputSlew:   slew,
			Power:       model.PowerParams{Activity: DefaultActivityFactor, Freq: tc.Clock},
			PowerWeight: weight,
		},
		space: variation.DefaultSpace().Scaled(sigma),
		mc: variation.YieldOptions{
			Samples:            samples,
			RelErr:             relErr,
			AbsErr:             absErr,
			Workers:            req.Workers,
			Seed:               req.Seed,
			ImportanceSampling: req.ImportanceSampling,
			Estimator:          kind,
			TargetSigma:        targetSigma,
			Sampler:            sampler,
		},
		target: target,
		slew:   slew,
		yt:     req.YieldTarget,
	}, nil
}

// scenario binds a designed line to the plan's variation space.
func (p *yieldPlan) scenario(des buffering.Design) *variation.LinkScenario {
	return &variation.LinkScenario{
		Base:   p.tc,
		Coeffs: p.coeffs,
		Space:  p.space,
		Spec:   model.LineSpec{Kind: des.Kind, Size: des.Size, N: des.N, Segment: p.seg, InputSlew: p.slew},
		Target: p.target,
	}
}

// LinkYield estimates the timing yield of a buffered link under
// process variation: the link is designed exactly as DesignLink would
// (same objective, same models), then evaluated against the delay
// target over a population of perturbed technologies.
//
// Determinism guarantee: for a fixed request (including Seed), the
// result is bit-identical for every Workers value — per-sample PRNG
// streams are keyed by (seed ⊕ sample index) and accumulated in index
// order, the same contract PR 1 established for synthesis.
func LinkYield(req YieldRequest) (YieldResult, error) {
	return LinkYieldCtx(context.Background(), req)
}

// LinkYieldCtx is LinkYield under a context: the Monte Carlo sampling
// (and, with YieldTarget, the candidate search driving it) checks for
// cancellation at batch boundaries, so a large-budget estimation can
// be interrupted by a signal or bounded by a deadline — it returns
// ctx.Err() promptly and discards the partial accumulation. A run
// that completes under a live context is bit-identical to LinkYield.
func LinkYieldCtx(ctx context.Context, req YieldRequest) (YieldResult, error) {
	return Surfaced{Cache: surfaceCache.Load()}.LinkYieldCtx(ctx, req)
}

// LinkYieldCtx runs the full estimation path against the bound cache;
// see the package-level LinkYieldCtx.
func (sf Surfaced) LinkYieldCtx(ctx context.Context, req YieldRequest) (YieldResult, error) {
	p, err := req.plan()
	if err != nil {
		return YieldResult{}, err
	}

	// Warm-surface consult: answered entirely from memoized estimates
	// when the cache is enabled, the request hasn't opted out, and the
	// conservative band meets the request's tolerance. Sizing requests
	// (YieldTarget) always sample — the chosen design depends on the
	// target, which a memoized curve cannot re-decide.
	cache := sf.Cache
	consult := cache != nil && !req.NoSurface
	if consult && p.yt == nil {
		if res, ok := p.surfaceAnswer(cache); ok {
			return res, nil
		}
	}

	var des buffering.Design
	var est variation.Estimate
	resized := false
	if p.yt != nil {
		sized, err := variation.SizeForYieldCtx(ctx, p.tc, p.seg, variation.SizingOptions{
			Buffering:   p.bufOpts,
			Space:       p.space,
			Target:      p.target,
			YieldTarget: *p.yt,
			MC:          p.mc,
		})
		if err != nil {
			return YieldResult{}, err
		}
		des, est, resized = sized.Design, sized.Estimate, sized.Resized
	} else {
		des, err = buffering.Optimize(p.seg, p.bufOpts)
		if err != nil {
			return YieldResult{}, err
		}
		est, err = variation.EstimateLinkYieldCtx(ctx, p.scenario(des), p.mc)
		if err != nil {
			return YieldResult{}, err
		}
	}

	// Refresh the surface from the completed run. Only the plain
	// estimation path memoizes the design: it evaluated the nominal
	// weighted-objective solution, which is what a later warm query
	// asks about.
	if consult {
		p.surfaceRecord(cache, des, est, p.yt == nil)
	}

	return YieldResult{
		Repeaters:         des.N,
		RepeaterSize:      des.Size,
		NominalDelay:      des.Delay,
		Target:            p.target,
		Yield:             est.Yield,
		FailProb:          est.FailProb,
		StdErr:            est.StdErr,
		CI95:              est.CI95(),
		Samples:           est.Samples,
		ImportanceSampled: est.Shifted,
		Estimator:         string(est.Estimator),
		VarianceReduction: est.VarianceReduction,
		Resized:           resized,
		Source:            SourceMC,
	}, nil
}

// LinkYieldNominal is the graceful-degradation fallback for LinkYield:
// it validates the request identically, designs the link identically,
// but replaces the Monte Carlo estimation with a single closed-form
// evaluation at the nominal process corner (model.ScaledFor against an
// unperturbed technology — microseconds, not milliseconds). The
// result is marked Degraded, its Yield collapses to a 0/1 step around
// the target, and FailProbBound carries the (vacuous, and therefore
// honest) rule-of-three bound for the single evaluation performed.
// A YieldTarget is validated but not acted on — resizing needs
// sampling — so Resized is always false.
//
// cmd/predintd serves this path when a request's cost budget or the
// admission-queue pressure won't allow sampling.
func LinkYieldNominal(req YieldRequest) (YieldResult, error) {
	return LinkYieldNominalCtx(context.Background(), req)
}

// LinkYieldNominalCtx is LinkYieldNominal under a context; only an
// up-front check applies, as the evaluation itself is a handful of
// closed-form model calls.
func LinkYieldNominalCtx(ctx context.Context, req YieldRequest) (YieldResult, error) {
	if err := ctx.Err(); err != nil {
		return YieldResult{}, err
	}
	p, err := req.plan()
	if err != nil {
		return YieldResult{}, err
	}
	des, err := buffering.Optimize(p.seg, p.bufOpts)
	if err != nil {
		return YieldResult{}, err
	}
	nominal, err := p.scenario(des).NominalDelay()
	if err != nil {
		return YieldResult{}, err
	}
	fail := 0.0
	if nominal > p.target {
		fail = 1
	}
	return YieldResult{
		Repeaters:     des.N,
		RepeaterSize:  des.Size,
		NominalDelay:  nominal,
		Target:        p.target,
		Yield:         1 - fail,
		FailProb:      fail,
		Samples:       1,
		Degraded:      true,
		FailProbBound: 1, // min(1, 3/n) at n = 1
		Source:        SourceNominal,
	}, nil
}

// YieldCandidate names one explicit buffering solution of a batch
// yield request: an inverter repeater of the given drive strength,
// repeated the given number of times along the line.
type YieldCandidate struct {
	// RepeaterSize is the repeater drive strength in unit-inverter
	// multiples (required, positive).
	RepeaterSize float64
	// Repeaters is the repeater count (required, at least 1).
	Repeaters int
}

// YieldBatchRequest scores K explicit candidate buffering solutions of
// one link against a shared delay target. All candidates are evaluated
// on common random numbers — the same per-sample technology
// perturbation serves every candidate — so the per-candidate estimates
// are directly comparable (and each is bit-identical to what a
// standalone LinkYield of that candidate would report), at a fraction
// of K independent estimations' cost.
//
// The embedded YieldRequest supplies the link geometry, target, and
// sampling budget; its YieldTarget must be nil (the candidates are
// explicit — there is nothing to resize).
type YieldBatchRequest struct {
	YieldRequest
	// Candidates lists the buffering solutions to score (required,
	// non-empty).
	Candidates []YieldCandidate
}

// YieldBatchResult reports one batch estimation.
type YieldBatchResult struct {
	// Target is the shared delay constraint (s).
	Target float64
	// Results holds one YieldResult per candidate, in request order.
	Results []YieldResult
}

// batchSpecs validates the candidates and assembles their line specs
// plus nominal (unperturbed-model) delays.
func (p *yieldPlan) batchSpecs(cands []YieldCandidate) ([]model.LineSpec, []float64, error) {
	specs := make([]model.LineSpec, len(cands))
	noms := make([]float64, len(cands))
	for c, cand := range cands {
		if math.IsNaN(cand.RepeaterSize) || cand.RepeaterSize <= 0 {
			return nil, nil, fmt.Errorf("predint: candidate %d: non-positive repeater size %g", c, cand.RepeaterSize)
		}
		if cand.Repeaters < 1 {
			return nil, nil, fmt.Errorf("predint: candidate %d: need at least one repeater, got %d", c, cand.Repeaters)
		}
		specs[c] = model.LineSpec{
			Kind:      liberty.Inverter,
			Size:      cand.RepeaterSize,
			N:         cand.Repeaters,
			Segment:   p.seg,
			InputSlew: p.slew,
		}
		t, err := p.coeffs.LineDelay(specs[c])
		if err != nil {
			return nil, nil, fmt.Errorf("predint: candidate %d: %w", c, err)
		}
		noms[c] = t.Delay
	}
	return specs, noms, nil
}

// validateBatch applies the batch-specific request rules.
func (req YieldBatchRequest) validateBatch() error {
	if req.YieldTarget != nil {
		return fmt.Errorf("predint: batch yield does not accept a yield target — the candidates are explicit")
	}
	if len(req.Candidates) == 0 {
		return fmt.Errorf("predint: batch yield needs at least one candidate")
	}
	return nil
}

// LinkYieldBatch estimates the timing yield of every candidate in one
// shared-sample pass; see YieldBatchRequest. The determinism guarantee
// of LinkYield applies per candidate.
func LinkYieldBatch(req YieldBatchRequest) (YieldBatchResult, error) {
	return LinkYieldBatchCtx(context.Background(), req)
}

// LinkYieldBatchCtx is LinkYieldBatch under a context, with the same
// batch-boundary cancellation contract as LinkYieldCtx.
func LinkYieldBatchCtx(ctx context.Context, req YieldBatchRequest) (YieldBatchResult, error) {
	return Surfaced{Cache: surfaceCache.Load()}.LinkYieldBatchCtx(ctx, req)
}

// LinkYieldBatchCtx runs the batch estimation path against the bound
// cache; see the package-level LinkYieldBatchCtx.
func (sf Surfaced) LinkYieldBatchCtx(ctx context.Context, req YieldBatchRequest) (YieldBatchResult, error) {
	if err := req.validateBatch(); err != nil {
		return YieldBatchResult{}, err
	}
	p, err := req.YieldRequest.plan()
	if err != nil {
		return YieldBatchResult{}, err
	}
	specs, noms, err := p.batchSpecs(req.Candidates)
	if err != nil {
		return YieldBatchResult{}, err
	}

	// Warm-surface consult, all-or-nothing: a batch is answered from
	// the cache only when every candidate is warm, so cached and
	// freshly sampled estimates never mix in one response.
	cache := sf.Cache
	consult := cache != nil && !req.NoSurface
	if consult {
		if out, ok := p.surfaceBatchAnswer(cache, req.Candidates, noms); ok {
			return out, nil
		}
	}

	ests, err := variation.EstimateYieldsSharedCtx(ctx, &variation.MultiScenario{
		Base:   p.tc,
		Coeffs: p.coeffs,
		Space:  p.space,
		Specs:  specs,
		Target: p.target,
	}, p.mc)
	if err != nil {
		return YieldBatchResult{}, err
	}
	out := YieldBatchResult{Target: p.target, Results: make([]YieldResult, len(ests))}
	for c, e := range ests {
		if consult {
			p.surfaceRecord(cache, buffering.Design{
				Size: req.Candidates[c].RepeaterSize,
				N:    req.Candidates[c].Repeaters,
			}, e, false)
		}
		out.Results[c] = YieldResult{
			Repeaters:         req.Candidates[c].Repeaters,
			RepeaterSize:      req.Candidates[c].RepeaterSize,
			NominalDelay:      noms[c],
			Target:            p.target,
			Yield:             e.Yield,
			FailProb:          e.FailProb,
			StdErr:            e.StdErr,
			CI95:              e.CI95(),
			Samples:           e.Samples,
			ImportanceSampled: e.Shifted,
			Estimator:         string(e.Estimator),
			VarianceReduction: e.VarianceReduction,
			Source:            SourceMC,
		}
	}
	return out, nil
}

// LinkYieldBatchNominal is the graceful-degradation fallback for
// LinkYieldBatch, mirroring LinkYieldNominal: identical validation,
// but each candidate gets a single closed-form evaluation at the
// nominal process corner instead of a Monte Carlo estimation. Every
// result is marked Degraded with the vacuous rule-of-three bound.
func LinkYieldBatchNominal(req YieldBatchRequest) (YieldBatchResult, error) {
	return LinkYieldBatchNominalCtx(context.Background(), req)
}

// LinkYieldBatchNominalCtx is LinkYieldBatchNominal under a context;
// only an up-front check applies.
func LinkYieldBatchNominalCtx(ctx context.Context, req YieldBatchRequest) (YieldBatchResult, error) {
	if err := ctx.Err(); err != nil {
		return YieldBatchResult{}, err
	}
	if err := req.validateBatch(); err != nil {
		return YieldBatchResult{}, err
	}
	p, err := req.YieldRequest.plan()
	if err != nil {
		return YieldBatchResult{}, err
	}
	specs, _, err := p.batchSpecs(req.Candidates)
	if err != nil {
		return YieldBatchResult{}, err
	}
	out := YieldBatchResult{Target: p.target, Results: make([]YieldResult, len(specs))}
	for c := range specs {
		sc := &variation.LinkScenario{
			Base:   p.tc,
			Coeffs: p.coeffs,
			Space:  p.space,
			Spec:   specs[c],
			Target: p.target,
		}
		nominal, err := sc.NominalDelay()
		if err != nil {
			return YieldBatchResult{}, err
		}
		fail := 0.0
		if nominal > p.target {
			fail = 1
		}
		out.Results[c] = YieldResult{
			Repeaters:     req.Candidates[c].Repeaters,
			RepeaterSize:  req.Candidates[c].RepeaterSize,
			NominalDelay:  nominal,
			Target:        p.target,
			Yield:         1 - fail,
			FailProb:      fail,
			Samples:       1,
			Degraded:      true,
			FailProbBound: 1, // min(1, 3/n) at n = 1
			Source:        SourceNominal,
		}
	}
	return out, nil
}
