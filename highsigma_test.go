package predint

import (
	"errors"
	"math"
	"testing"
	"time"
)

// TestYieldValidationSentinels pins the facade-boundary validation:
// every malformed target, sigma, or estimator name is rejected with
// the matching sentinel so callers can classify failures by errors.Is.
// The +Inf delay target is the regression case — it used to pass the
// bare non-positive check and turn the query into a vacuous
// always-passes estimation.
func TestYieldValidationSentinels(t *testing.T) {
	base := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(64)}
	cases := []struct {
		name string
		mut  func(*YieldRequest)
		want error
	}{
		{"target +inf", func(r *YieldRequest) { r.TargetPS = Float(math.Inf(1)) }, ErrInvalidTarget},
		{"target -inf", func(r *YieldRequest) { r.TargetPS = Float(math.Inf(-1)) }, ErrInvalidTarget},
		{"target nan", func(r *YieldRequest) { r.TargetPS = Float(math.NaN()) }, ErrInvalidTarget},
		{"target zero", func(r *YieldRequest) { r.TargetPS = Float(0) }, ErrInvalidTarget},
		{"target negative", func(r *YieldRequest) { r.TargetPS = Float(-1) }, ErrInvalidTarget},
		{"yield target zero", func(r *YieldRequest) { r.YieldTarget = Float(0) }, ErrInvalidTarget},
		{"yield target one", func(r *YieldRequest) { r.YieldTarget = Float(1) }, ErrInvalidTarget},
		{"yield target nan", func(r *YieldRequest) { r.YieldTarget = Float(math.NaN()) }, ErrInvalidTarget},
		{"sigma negative", func(r *YieldRequest) { r.TargetSigma = Float(-1) }, ErrInvalidSigma},
		{"sigma nan", func(r *YieldRequest) { r.TargetSigma = Float(math.NaN()) }, ErrInvalidSigma},
		{"sigma +inf", func(r *YieldRequest) { r.TargetSigma = Float(math.Inf(1)) }, ErrInvalidSigma},
		{"sigma scale +inf", func(r *YieldRequest) { r.SigmaScale = Float(math.Inf(1)) }, ErrInvalidSigma},
		{"sigma scale negative", func(r *YieldRequest) { r.SigmaScale = Float(-0.5) }, ErrInvalidSigma},
		{"unknown estimator", func(r *YieldRequest) { r.Estimator = "bogus" }, ErrUnknownEstimator},
		{"unknown sampler", func(r *YieldRequest) { r.Sampler = "gaussian-ish" }, ErrUnknownSampler},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		_, err := LinkYield(req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not wrap %v", tc.name, err, tc.want)
		}
	}
}

// TestYieldEstimatorThreading: an explicitly pinned rung reaches the
// engine and its label comes back through the facade, on both the
// single and the batch path.
func TestYieldEstimatorThreading(t *testing.T) {
	base := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1, TargetPS: Float(470), NoSurface: true}
	for _, kind := range []string{"mc", "qmc", "isle", "ais", "wcd"} {
		req := base
		req.Estimator = kind
		res, err := LinkYield(req)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Estimator != kind {
			t.Fatalf("requested %q, result labeled %q", kind, res.Estimator)
		}
		if kind == "wcd" && res.Samples != 0 {
			t.Fatalf("analytic wcd answer drew %d samples", res.Samples)
		}
	}

	req := YieldBatchRequest{YieldRequest: base, Candidates: []YieldCandidate{{RepeaterSize: 8, Repeaters: 10}, {RepeaterSize: 12, Repeaters: 8}}}
	req.Estimator = "qmc"
	batch, err := LinkYieldBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range batch.Results {
		if r.Estimator != "qmc" {
			t.Fatalf("batch candidate %d labeled %q, want qmc", c, r.Estimator)
		}
	}
}

// TestYieldSamplerThreading: a pinned sampler reaches the engine. The
// two samplers draw different (individually deterministic) sequences at
// the same seed, so on this fixture their realized fail counts differ —
// a fixed-seed comparison, not a statistical one — while each sampler
// on its own keeps the any-worker-count determinism contract, and the
// empty name resolves to the ziggurat default. The unknown-sampler
// rejection is also checked on the nominal (non-sampling) path, pinning
// that validation lives in the shared plan, not the sampling kernel.
func TestYieldSamplerThreading(t *testing.T) {
	base := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 7, TargetPS: Float(470), Estimator: "mc", NoSurface: true}
	results := map[string]YieldResult{}
	for _, s := range []string{"ziggurat", "box-muller"} {
		req := base
		req.Sampler = s
		req.Workers = 1
		serial, err := LinkYield(req)
		if err != nil {
			t.Fatalf("%s serial: %v", s, err)
		}
		req.Workers = 4
		parallel, err := LinkYield(req)
		if err != nil {
			t.Fatalf("%s parallel: %v", s, err)
		}
		if serial != parallel {
			t.Fatalf("%s: workers changed the result:\n serial   %+v\n parallel %+v", s, serial, parallel)
		}
		results[s] = serial
	}
	if results["ziggurat"].FailProb == results["box-muller"].FailProb {
		t.Fatalf("samplers produced identical fail probs (%g) — the Sampler field is not reaching the engine", results["ziggurat"].FailProb)
	}
	def, err := LinkYield(base)
	if err != nil {
		t.Fatal(err)
	}
	if def != results["ziggurat"] {
		t.Fatalf("empty sampler did not resolve to ziggurat:\n got  %+v\n want %+v", def, results["ziggurat"])
	}

	bad := base
	bad.Sampler = "bogus"
	if _, err := LinkYieldNominal(bad); !errors.Is(err, ErrUnknownSampler) {
		t.Fatalf("nominal path with bad sampler: err = %v, want ErrUnknownSampler", err)
	}
}

// TestYieldDeepSigmaAcceptance is the PR's acceptance criterion: a 6σ
// query completes within 10× the wall time of the equivalent 2σ query,
// reports the routed deep-tail machinery (the worst-case-distance
// certificate or adaptive importance sampling — never plain MC, which
// would need ~1e11 samples), and meets the requested relative error.
func TestYieldDeepSigmaAcceptance(t *testing.T) {
	base := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(4096), Seed: 1, NoSurface: true}

	timeQuery := func(req YieldRequest) (YieldResult, time.Duration) {
		t.Helper()
		// Two runs, keep the faster: the first pays any lazy
		// initialization, and the min is the stabler wall-clock statistic.
		best := time.Duration(math.MaxInt64)
		var res YieldResult
		for i := 0; i < 2; i++ {
			start := time.Now()
			r, err := LinkYield(req)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best, res = d, r
			}
		}
		return res, best
	}

	shallow := base
	shallow.TargetSigma = Float(2)
	res2, t2 := timeQuery(shallow)
	if res2.Estimator == "" {
		t.Fatalf("2σ query reported no estimator: %+v", res2)
	}

	deep := base
	deep.TargetSigma = Float(6)
	deep.RelErr = Float(0.25)
	res6, t6 := timeQuery(deep)
	switch res6.Estimator {
	case "wcd":
		// Analytic certificate: no samples were drawn and the reported
		// error is the (deliberately conservative) certification band,
		// so the accuracy guarantee is the certificate itself — the
		// failure probability resolves below the 6σ demand.
		if res6.Samples != 0 {
			t.Fatalf("certified 6σ answer drew %d samples: %+v", res6.Samples, res6)
		}
		if phi6 := math.Erfc(6/math.Sqrt2) / 2; res6.FailProb > phi6 {
			t.Fatalf("certified 6σ answer p=%g above Φ(−6)=%g", res6.FailProb, phi6)
		}
	case "ais":
		if res6.FailProb > 0 && res6.StdErr/res6.FailProb > 0.25 {
			t.Fatalf("6σ relative error %g exceeds the requested 0.25", res6.StdErr/res6.FailProb)
		}
	default:
		t.Fatalf("6σ query served by %q, want the deep-tail machinery (wcd or ais): %+v", res6.Estimator, res6)
	}
	// The 50 ms slack absorbs scheduler noise on queries that are both
	// fast in absolute terms.
	if limit := 10*t2 + 50*time.Millisecond; t6 > limit {
		t.Fatalf("6σ query took %v, over 10× the 2σ query's %v", t6, t2)
	}
}
