package predint

import (
	"strings"
	"testing"
)

func TestLinkYieldBasic(t *testing.T) {
	res, err := LinkYield(YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repeaters <= 0 || res.RepeaterSize <= 0 {
		t.Fatalf("degenerate design: %+v", res)
	}
	if res.Yield < 0 || res.Yield > 1 || res.Yield+res.FailProb != 1 {
		t.Fatalf("yield/fail-prob inconsistent: %+v", res)
	}
	if res.Samples != 2048 {
		t.Fatalf("ran %d samples, want the full budget", res.Samples)
	}
	if res.Target <= 0 || res.NominalDelay <= 0 {
		t.Fatalf("missing delay fields: %+v", res)
	}
	if res.ImportanceSampled {
		t.Fatal("plain request reported as importance-sampled")
	}
}

// TestLinkYieldWorkerDeterminism is the facade-level acceptance test:
// identical requests differing only in Workers return bit-identical
// results.
func TestLinkYieldWorkerDeterminism(t *testing.T) {
	base := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 1, TargetPS: Float(470)}
	for _, is := range []bool{false, true} {
		req := base
		req.ImportanceSampling = is
		req.Workers = 1
		serial, err := LinkYield(req)
		if err != nil {
			t.Fatal(err)
		}
		req.Workers = 8
		parallel, err := LinkYield(req)
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Fatalf("is=%v: Workers=8 diverged: %+v vs %+v", is, parallel, serial)
		}
	}
}

// TestLinkYieldSeedSensitivity pins the PRNG seed-family fix: distinct
// seeds must be independent replications, not permutations of the same
// sample set.
func TestLinkYieldSeedSensitivity(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(2048), TargetPS: Float(470)}
	req.Seed = 1
	a, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Seed = 2
	b, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("seeds 1 and 2 produced identical estimates: %+v", a)
	}
}

// TestLinkYieldExplicitZeroSigma: Float(0) disables variation instead
// of being rewritten to the default scale, so yield collapses to a
// 0/1 step around the target.
func TestLinkYieldExplicitZeroSigma(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(256), Seed: 1, SigmaScale: Float(0)}
	res, err := LinkYield(req) // target = clock period, comfortably met
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 {
		t.Fatalf("zero-sigma yield %g with a met target, want exactly 1", res.Yield)
	}
	req.TargetPS = Float(res.NominalDelay*1e12 - 1)
	res, err = LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 0 {
		t.Fatalf("zero-sigma yield %g with a missed target, want exactly 0", res.Yield)
	}
}

func TestLinkYieldResizesForTarget(t *testing.T) {
	nominal, err := LinkYield(YieldRequest{
		Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 1,
		PowerWeight: Float(0.8), TargetPS: Float(510),
		ImportanceSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sized, err := LinkYield(YieldRequest{
		Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 1,
		PowerWeight: Float(0.8), TargetPS: Float(510),
		YieldTarget:        Float(0.95),
		ImportanceSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sized.Resized {
		t.Fatal("yield target did not force a resize")
	}
	if sized.RepeaterSize == nominal.RepeaterSize && sized.Repeaters == nominal.Repeaters {
		t.Fatal("resized design identical to the nominal one")
	}
	if sized.Yield < 0.95 {
		t.Fatalf("resized yield %g below the 0.95 target", sized.Yield)
	}
	if nominal.Yield >= 0.95 {
		t.Fatalf("nominal yield %g already met the target — scenario lost its teeth", nominal.Yield)
	}
}

func TestLinkYieldValidation(t *testing.T) {
	ok := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(64)}
	for name, mutate := range map[string]func(*YieldRequest){
		"unknown-tech":     func(r *YieldRequest) { r.Tech = "13nm" },
		"zero-length":      func(r *YieldRequest) { r.LengthMM = 0 },
		"bad-style":        func(r *YieldRequest) { r.Style = "braided" },
		"weight-one":       func(r *YieldRequest) { r.PowerWeight = Float(1) },
		"zero-slew":        func(r *YieldRequest) { r.InputSlewPS = Float(0) },
		"zero-target":      func(r *YieldRequest) { r.TargetPS = Float(0) },
		"zero-samples":     func(r *YieldRequest) { r.Samples = Int(0) },
		"negative-relerr":  func(r *YieldRequest) { r.RelErr = Float(-0.1) },
		"negative-abserr":  func(r *YieldRequest) { r.AbsErr = Float(-0.1) },
		"negative-sigma":   func(r *YieldRequest) { r.SigmaScale = Float(-1) },
		"yield-target-one": func(r *YieldRequest) { r.YieldTarget = Float(1) },
	} {
		req := ok
		mutate(&req)
		if _, err := LinkYield(req); err == nil {
			t.Errorf("%s: invalid request accepted", name)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("%s: error %q lacks a package prefix", name, err)
		}
		// The degraded path shares the plan, so it must reject the
		// same requests.
		if _, err := LinkYieldNominal(req); err == nil {
			t.Errorf("%s: degraded path accepted an invalid request", name)
		}
	}
}

// TestLinkYieldNominalMatchesFullPath: the degraded result evaluates
// the same design the Monte Carlo path would — same repeater solution,
// and a nominal delay that agrees with the full estimator's (both are
// model.ScaledFor at the nominal corner, where scaling is the
// identity).
func TestLinkYieldNominalMatchesFullPath(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(256), Seed: 1}
	full, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := LinkYieldNominal(req)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Repeaters != full.Repeaters || deg.RepeaterSize != full.RepeaterSize {
		t.Fatalf("degraded design (%d, %g) diverged from full (%d, %g)",
			deg.Repeaters, deg.RepeaterSize, full.Repeaters, full.RepeaterSize)
	}
	if deg.NominalDelay != full.NominalDelay {
		t.Fatalf("degraded nominal delay %g != full-path %g", deg.NominalDelay, full.NominalDelay)
	}
	if !deg.Degraded || full.Degraded {
		t.Fatalf("Degraded markers wrong: degraded=%v full=%v", deg.Degraded, full.Degraded)
	}
}

// TestLinkYieldBatchMatchesSingle pins the batch API's headline
// guarantee: scoring the single-link path's own designed solution as
// an explicit batch candidate — alongside a competitor, on shared
// samples — returns the bit-identical estimate the standalone request
// produced, for both estimators.
func TestLinkYieldBatchMatchesSingle(t *testing.T) {
	for _, is := range []bool{false, true} {
		req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1, TargetPS: Float(470), ImportanceSampling: is}
		single, err := LinkYield(req)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := LinkYieldBatch(YieldBatchRequest{
			YieldRequest: req,
			Candidates: []YieldCandidate{
				{RepeaterSize: single.RepeaterSize, Repeaters: single.Repeaters},
				{RepeaterSize: 8, Repeaters: 12},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Results) != 2 {
			t.Fatalf("is=%v: %d results for 2 candidates", is, len(batch.Results))
		}
		got := batch.Results[0]
		if got.Yield != single.Yield || got.FailProb != single.FailProb || got.StdErr != single.StdErr ||
			got.Samples != single.Samples || got.NominalDelay != single.NominalDelay || got.Target != single.Target {
			t.Fatalf("is=%v: batch candidate 0 diverged from the standalone run:\n got %+v\nwant %+v", is, got, single)
		}
		if got.ImportanceSampled != single.ImportanceSampled {
			t.Fatalf("is=%v: estimator markers diverged: batch %v, single %v", is, got.ImportanceSampled, single.ImportanceSampled)
		}
	}
}

// TestLinkYieldBatchWorkerDeterminism extends the bit-identical
// Workers contract to the batch path.
func TestLinkYieldBatchWorkerDeterminism(t *testing.T) {
	req := YieldBatchRequest{
		YieldRequest: YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 7, TargetPS: Float(470)},
		Candidates:   []YieldCandidate{{RepeaterSize: 8, Repeaters: 10}, {RepeaterSize: 12, Repeaters: 8}},
	}
	req.Workers = 1
	serial, err := LinkYieldBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Workers = 8
	parallel, err := LinkYieldBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	for c := range serial.Results {
		if serial.Results[c] != parallel.Results[c] {
			t.Fatalf("candidate %d: Workers=8 diverged: %+v vs %+v", c, parallel.Results[c], serial.Results[c])
		}
	}
}

func TestLinkYieldBatchValidation(t *testing.T) {
	ok := YieldBatchRequest{
		YieldRequest: YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(64)},
		Candidates:   []YieldCandidate{{RepeaterSize: 8, Repeaters: 10}},
	}
	for name, mutate := range map[string]func(*YieldBatchRequest){
		"yield-target":   func(r *YieldBatchRequest) { r.YieldTarget = Float(0.95) },
		"no-candidates":  func(r *YieldBatchRequest) { r.Candidates = nil },
		"zero-size":      func(r *YieldBatchRequest) { r.Candidates = []YieldCandidate{{RepeaterSize: 0, Repeaters: 10}} },
		"zero-repeaters": func(r *YieldBatchRequest) { r.Candidates = []YieldCandidate{{RepeaterSize: 8, Repeaters: 0}} },
		"unknown-tech":   func(r *YieldBatchRequest) { r.Tech = "13nm" },
	} {
		req := ok
		mutate(&req)
		if _, err := LinkYieldBatch(req); err == nil {
			t.Errorf("%s: invalid batch request accepted", name)
		}
		// The degraded path shares the validation.
		if _, err := LinkYieldBatchNominal(req); err == nil {
			t.Errorf("%s: degraded batch path accepted an invalid request", name)
		}
	}
	// Candidate errors name the offending candidate.
	req := ok
	req.Candidates = []YieldCandidate{{RepeaterSize: 8, Repeaters: 10}, {RepeaterSize: -1, Repeaters: 10}}
	if _, err := LinkYieldBatch(req); err == nil || !strings.Contains(err.Error(), "candidate 1") {
		t.Errorf("bad second candidate: error %v does not name candidate 1", err)
	}
}

// TestLinkYieldBatchNominalContract mirrors TestLinkYieldNominalContract
// for the batch degradation path: every candidate gets the single
// closed-form evaluation, the 0/1 yield step, and the vacuous bound.
func TestLinkYieldBatchNominalContract(t *testing.T) {
	req := YieldBatchRequest{
		YieldRequest: YieldRequest{Tech: "90nm", LengthMM: 5},
		Candidates:   []YieldCandidate{{RepeaterSize: 60, Repeaters: 2}, {RepeaterSize: 4, Repeaters: 1}},
	}
	res, err := LinkYieldBatchNominal(req)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LinkYieldBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range res.Results {
		if !r.Degraded || r.Samples != 1 || r.FailProbBound != 1 {
			t.Fatalf("candidate %d degraded contract broken: %+v", c, r)
		}
		if r.Yield != 0 && r.Yield != 1 {
			t.Fatalf("candidate %d: degraded yield %g is not a 0/1 step", c, r.Yield)
		}
		if r.NominalDelay != full.Results[c].NominalDelay {
			t.Fatalf("candidate %d: degraded nominal delay %g != full-path %g", c, r.NominalDelay, full.Results[c].NominalDelay)
		}
	}
	// The tiny single-repeater candidate misses the clock-period target
	// outright; the designed-size one meets it — the step discriminates.
	if res.Results[0].Yield != 1 || res.Results[1].Yield != 0 {
		t.Fatalf("degraded step did not discriminate the candidates: %+v", res.Results)
	}
}

// TestLinkYieldNominalContract pins the degraded-response contract the
// serving layer documents: a 0/1 yield step around the target, a
// single evaluation, and the vacuous rule-of-three bound.
func TestLinkYieldNominalContract(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5} // target = clock period, comfortably met
	res, err := LinkYieldNominal(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 || res.FailProb != 0 {
		t.Fatalf("met target: yield %g / fail %g, want exactly 1 / 0", res.Yield, res.FailProb)
	}
	if res.Samples != 1 {
		t.Fatalf("degraded result claims %d samples, want 1", res.Samples)
	}
	if res.FailProbBound != 1 {
		t.Fatalf("rule-of-three bound %g at n=1, want 1", res.FailProbBound)
	}
	if res.Resized || res.ImportanceSampled {
		t.Fatalf("degraded result claims sampling work: %+v", res)
	}

	req.TargetPS = Float(res.NominalDelay*1e12 - 1)
	miss, err := LinkYieldNominal(req)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Yield != 0 || miss.FailProb != 1 {
		t.Fatalf("missed target: yield %g / fail %g, want exactly 0 / 1", miss.Yield, miss.FailProb)
	}
}
