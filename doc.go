// Package predint is an open-source reproduction of "Accurate
// Predictive Interconnect Modeling for System-Level Design" (Carloni,
// Kahng, Muddu, Pinto, Samadi, Sharma — IEEE TVLSI 18(4), 2010): fast
// closed-form predictive models for the delay, power, and area of
// global buffered interconnects, calibrated by regression against a
// golden characterization flow, plus a COSI-OCC-style network-on-chip
// communication-synthesis tool that consumes them.
//
// This root package is the public facade: it wires together the
// substrates (technology descriptors, circuit simulation, NLDM
// library characterization, parasitic networks, golden sign-off
// timing, baseline models, buffering optimization, NoC synthesis) so
// that a downstream user can design links and synthesize networks in
// a few calls. The full machinery lives under internal/ and is
// exercised by the cmd/ tools, the examples/ programs, and the
// benchmark harness in bench_test.go, which regenerates every table
// and figure of the paper's evaluation (see DESIGN.md and
// EXPERIMENTS.md).
//
// Quick start:
//
//	res, err := predint.DesignLink(predint.LinkRequest{
//		Tech:     "65nm",
//		LengthMM: 5,
//	})
//	// res.Delay, res.DynamicPower, res.Repeaters, ...
//
// All physical quantities are SI: seconds, meters, ohms, farads,
// watts.
package predint
