package predint

import (
	"math"
	"testing"
)

// TestSurfaceOffVsMissBitIdentical pins the cache's strict-acceleration
// contract: a cold (miss) query with the surface enabled, and a
// NoSurface query, are both bit-identical — every field — to the same
// request with the surface disabled. Only repeated warm queries change
// behavior, and those are exact-target hits returning the memoized
// estimate unchanged.
func TestSurfaceOffVsMissBitIdentical(t *testing.T) {
	req := YieldRequest{Tech: "65nm", LengthMM: 3, Samples: Int(256), Seed: 11}
	base, err := LinkYield(req) // surface disabled: the historical path
	if err != nil {
		t.Fatal(err)
	}
	if base.Source != SourceMC {
		t.Fatalf("MC result labeled %q, want %q", base.Source, SourceMC)
	}

	EnableSurface()
	t.Cleanup(DisableSurface)

	miss, err := LinkYield(req) // cold cache: consult misses, full MC runs
	if err != nil {
		t.Fatal(err)
	}
	if miss != base {
		t.Fatalf("surface-miss result differs from surface-off:\n  off:  %+v\n  miss: %+v", base, miss)
	}

	warm, err := LinkYield(req) // exact-target warm hit
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != SourceSurface {
		t.Fatalf("repeated query not served from the surface: %+v", warm)
	}
	if warm.FailProb != base.FailProb || warm.StdErr != base.StdErr || warm.Samples != base.Samples ||
		warm.Repeaters != base.Repeaters || warm.RepeaterSize != base.RepeaterSize ||
		warm.NominalDelay != base.NominalDelay || warm.Yield != 1-base.FailProb {
		t.Fatalf("exact-target warm hit mangled the memoized estimate:\n  mc:   %+v\n  warm: %+v", base, warm)
	}

	nos := req
	nos.NoSurface = true
	off, err := LinkYield(nos) // escape hatch: bypasses the warm cache
	if err != nil {
		t.Fatal(err)
	}
	if off != base {
		t.Fatalf("NoSurface result differs from surface-off:\n  off:       %+v\n  NoSurface: %+v", base, off)
	}
}

// TestSurfaceSizingNeverConsults: a YieldTarget (sizing) request always
// samples — the chosen design depends on the target, which a memoized
// curve cannot re-decide — even when the plain estimate of the same
// link is warm.
func TestSurfaceSizingNeverConsults(t *testing.T) {
	EnableSurface()
	t.Cleanup(DisableSurface)
	req := YieldRequest{Tech: "65nm", LengthMM: 3, Samples: Int(256), Seed: 11}
	if _, err := LinkYield(req); err != nil { // warm the plain curve
		t.Fatal(err)
	}
	req.YieldTarget = Float(0.5)
	sized, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	if sized.Source != SourceMC {
		t.Fatalf("sizing request served from the surface: %+v", sized)
	}
}

// TestSurfaceBatchAllOrNothing: a batch is answered from the surface
// only when every candidate is warm; a fresh candidate sends the whole
// batch back to the shared-sample kernel.
func TestSurfaceBatchAllOrNothing(t *testing.T) {
	EnableSurface()
	t.Cleanup(DisableSurface)
	breq := YieldBatchRequest{
		YieldRequest: YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(256), Seed: 3, TargetPS: Float(520)},
		Candidates:   []YieldCandidate{{RepeaterSize: 8, Repeaters: 10}, {RepeaterSize: 12, Repeaters: 8}},
	}
	first, err := LinkYieldBatch(breq)
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range first.Results {
		if r.Source != SourceMC {
			t.Fatalf("cold batch candidate %d labeled %q", c, r.Source)
		}
	}
	warm, err := LinkYieldBatch(breq)
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range warm.Results {
		if r.Source != SourceSurface {
			t.Fatalf("warm batch candidate %d not served from the surface: %+v", c, r)
		}
		if r.FailProb != first.Results[c].FailProb || r.StdErr != first.Results[c].StdErr ||
			r.Samples != first.Results[c].Samples {
			t.Fatalf("warm batch candidate %d mangled: %+v vs %+v", c, r, first.Results[c])
		}
	}
	breq.Candidates = append(breq.Candidates, YieldCandidate{RepeaterSize: 16, Repeaters: 6})
	mixed, err := LinkYieldBatch(breq)
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range mixed.Results {
		if r.Source != SourceMC {
			t.Fatalf("batch with one cold candidate served candidate %d from the surface", c)
		}
	}
}

// TestSurfaceInterpolationBandCoversMC is the acceptance check on the
// conservative band: a between-points warm answer's 95% band, combined
// with the fresh run's own, must cover a full Monte Carlo estimate at
// the interpolated target.
func TestSurfaceInterpolationBandCoversMC(t *testing.T) {
	EnableSurface()
	t.Cleanup(DisableSurface)
	mk := func(targetPS float64, noSurface bool) YieldResult {
		t.Helper()
		res, err := LinkYield(YieldRequest{
			Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 5,
			TargetPS: Float(targetPS), NoSurface: noSurface,
			// A loose acceptance band so the interpolated answer is
			// served even across a wide bracketing gap.
			RelErr: Float(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mk(430, false) // bracket low
	mk(450, false) // bracket high
	warm := mk(440, false)
	if warm.Source != SourceSurface {
		t.Fatalf("bracketed query not interpolated from the surface: %+v", warm)
	}
	mc := mk(440, true) // fresh full MC at the same target
	if diff := math.Abs(warm.FailProb - mc.FailProb); diff > warm.CI95+mc.CI95 {
		t.Fatalf("interpolated fail prob %g ± %g inconsistent with MC %g ± %g (diff %g)",
			warm.FailProb, warm.CI95, mc.FailProb, mc.CI95, diff)
	}
}
