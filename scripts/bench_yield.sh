#!/bin/sh
# Runs the BenchmarkLinkYield* suite under -benchmem and emits
# BENCH_yield.json — one object per sub-benchmark with the timing, the
# custom metrics, and the derived per-sample allocation rates — so the
# yield engine's performance trajectory accumulates across commits.
#
# With a second argument (or ALLOC_CEILING_PER_SAMPLE in the
# environment), the script additionally fails when any sub-benchmark
# allocates more heap objects per sample than the ceiling — the CI
# regression gate for the zero-allocation sampling kernel.
#
# With a third argument (or SURFACE_NS_CEILING in the environment), the
# script also fails when the warm-surface benchmark
# (BenchmarkLinkYieldSurfaceWarm) exceeds that many ns/op — the CI gate
# on the serving layer's warm-query latency budget.
#
# With a fourth argument (or AIS_NS_PER_SAMPLE_CEILING), the script
# fails when the adaptive-importance-sampling benchmark
# (BenchmarkLinkYieldAIS) exceeds that many ns per sample — the gate
# that keeps the deep-tail rung's per-draw overhead (mixture sampling,
# log-density, importance weight) bounded relative to plain MC.
#
# With a fifth argument (or WCD_PREFILTER_NS_CEILING), the script fails
# when the worst-case-distance pre-filter benchmark
# (BenchmarkLinkYieldWCDPrefilter) exceeds that many ns/op: the
# certify-or-fall-through decision rides the per-candidate hot path of
# sizing sweeps, so it must stay sub-microsecond.
#
# With a sixth argument (or COORD_OVERHEAD_FACTOR), the script fails
# when the coordinator's single-local-worker loopback benchmark
# (BenchmarkLinkYieldCoordinator/loopback) runs more than that factor
# slower than direct execution (.../direct): the shard protocol (HTTP,
# JSON, index-ordered partial merge) is bookkeeping around the same
# sample evaluations and must stay a small constant factor.
#
# With a seventh argument (or MC_NS_PER_SAMPLE_CEILING), the script
# fails when the plain-MC serial benchmark (.../mc-serial) exceeds that
# many ns per sample — the throughput gate on the SoA lane kernel.
#
# With an eighth argument (or MC_PARALLEL_FACTOR), the script fails
# when mc-parallel runs more than that factor slower than mc-serial per
# sample: parallel dispatch must never lose to serial (the lane-granular
# pool dispatch exists precisely so per-sample dispatch overhead cannot
# eat the parallel speedup).
#
# With a ninth argument (or COORD_ALLOCS_CEILING), the script fails
# when the coordinator loopback benchmark allocates more than that many
# heap objects per operation — the guard on the shard protocol's pooled
# encode/decode scratch.
#
# Usage: scripts/bench_yield.sh [benchtime] [alloc ceiling] [surface ns ceiling] \
#                               [ais ns/sample ceiling] [wcd prefilter ns ceiling] \
#                               [coordinator overhead factor] [mc ns/sample ceiling] \
#                               [mc parallel factor] [coordinator allocs ceiling]
#        (default 5x, no gates)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-5x}"
ceiling="${2:-${ALLOC_CEILING_PER_SAMPLE:-}}"
surface_ceiling="${3:-${SURFACE_NS_CEILING:-}}"
ais_ceiling="${4:-${AIS_NS_PER_SAMPLE_CEILING:-}}"
wcd_ceiling="${5:-${WCD_PREFILTER_NS_CEILING:-}}"
coord_factor="${6:-${COORD_OVERHEAD_FACTOR:-}}"
mc_ceiling="${7:-${MC_NS_PER_SAMPLE_CEILING:-}}"
mc_par_factor="${8:-${MC_PARALLEL_FACTOR:-}}"
coord_allocs="${9:-${COORD_ALLOCS_CEILING:-}}"
out="BENCH_yield.json"

{
	go test -run '^$' -bench 'BenchmarkLinkYield' -benchtime "$benchtime" -benchmem .
	go test -run '^$' -bench 'BenchmarkNormsInto|BenchmarkLaneKernel' -benchtime "$benchtime" -benchmem ./internal/variation
} |
	awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
	/^Benchmark(LinkYield|NormsInto|LaneKernel)/ {
		# Fields: name iterations [value unit]...
		bench = $1
		sub(/-[0-9]+$/, "", bench) # -GOMAXPROCS suffix, when present
		sub(/^BenchmarkLinkYieldSweep\//, "sweep-", bench)
		sub(/^BenchmarkLinkYield\//, "", bench)
		sub(/^BenchmarkLinkYield/, "", bench) # slash-less top-level benches, e.g. SurfaceWarm
		sub(/^BenchmarkNormsInto\//, "norms-", bench)
		sub(/^BenchmarkLaneKernel\//, "kernel-", bench)
		split("", m)
		m["iterations"] = $2
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			gsub(/[^A-Za-z0-9]/, "_", unit)
			m[unit] = $i
		}
		# samples/op is reported by the benchmarks precisely so the
		# -benchmem counters translate into per-sample rates.
		if (("allocs_op" in m) && ("samples_op" in m) && m["samples_op"] + 0 > 0) {
			m["allocs_per_sample"] = m["allocs_op"] / m["samples_op"]
			m["bytes_per_sample"] = m["B_op"] / m["samples_op"]
		}
		printf "%s{\"bench\":\"%s\",\"commit\":\"%s\"", (n++ ? ",\n" : "[\n"), bench, commit
		nk = split("iterations ns_op ns_sample ns_draw samples_op yield fail_prob var_reduction_x beta band conclusive_frac model_evals B_op allocs_op bytes_per_sample allocs_per_sample", keys, " ")
		for (i = 1; i <= nk; i++)
			if (keys[i] in m) printf ",\"%s\":%s", keys[i], m[keys[i]] + 0
		printf "}"
	}
	END {
		if (n) print "\n]"
		else { print "benchmark produced no samples" > "/dev/stderr"; exit 1 }
	}' >"$out"

echo "wrote $out:" >&2
cat "$out"

if [ -n "$ceiling" ]; then
	awk -v ceiling="$ceiling" -F'"allocs_per_sample":' '
		NF > 1 {
			split($2, a, /[,}]/)
			if (a[1] + 0 > ceiling + 0) {
				bad = 1
				print "allocs/sample " a[1] " exceeds ceiling " ceiling ": " $0 > "/dev/stderr"
			}
		}
		END { exit bad }' "$out"
	echo "allocs/sample within ceiling $ceiling" >&2
fi

if [ -n "$surface_ceiling" ]; then
	awk -v ceiling="$surface_ceiling" '
		/"bench":"SurfaceWarm"/ {
			seen = 1
			if (match($0, /"ns_op":[0-9.e+]+/)) {
				ns = substr($0, RSTART + 8, RLENGTH - 8)
				if (ns + 0 > ceiling + 0) {
					bad = 1
					print "warm-surface query " ns " ns/op exceeds ceiling " ceiling > "/dev/stderr"
				}
			}
		}
		END {
			if (!seen) { print "no SurfaceWarm benchmark in output" > "/dev/stderr"; exit 1 }
			exit bad
		}' "$out"
	echo "warm-surface ns/op within ceiling $surface_ceiling" >&2
fi

if [ -n "$ais_ceiling" ]; then
	awk -v ceiling="$ais_ceiling" '
		/"bench":"AIS"/ {
			seen = 1
			if (match($0, /"ns_sample":[0-9.e+]+/)) {
				ns = substr($0, RSTART + 12, RLENGTH - 12)
				if (ns + 0 > ceiling + 0) {
					bad = 1
					print "AIS " ns " ns/sample exceeds ceiling " ceiling > "/dev/stderr"
				}
			}
		}
		END {
			if (!seen) { print "no AIS benchmark in output" > "/dev/stderr"; exit 1 }
			exit bad
		}' "$out"
	echo "AIS ns/sample within ceiling $ais_ceiling" >&2
fi

if [ -n "$wcd_ceiling" ]; then
	awk -v ceiling="$wcd_ceiling" '
		/"bench":"WCDPrefilter"/ {
			seen = 1
			if (match($0, /"ns_op":[0-9.e+]+/)) {
				ns = substr($0, RSTART + 8, RLENGTH - 8)
				if (ns + 0 > ceiling + 0) {
					bad = 1
					print "WCD pre-filter " ns " ns/op exceeds ceiling " ceiling > "/dev/stderr"
				}
			}
		}
		END {
			if (!seen) { print "no WCDPrefilter benchmark in output" > "/dev/stderr"; exit 1 }
			exit bad
		}' "$out"
	echo "WCD pre-filter ns/op within ceiling $wcd_ceiling" >&2
fi

if [ -n "$coord_factor" ]; then
	awk -v factor="$coord_factor" '
		/"bench":"Coordinator\/direct"/ {
			if (match($0, /"ns_op":[0-9.e+]+/))
				direct = substr($0, RSTART + 8, RLENGTH - 8) + 0
		}
		/"bench":"Coordinator\/loopback"/ {
			if (match($0, /"ns_op":[0-9.e+]+/))
				loopback = substr($0, RSTART + 8, RLENGTH - 8) + 0
		}
		END {
			if (!direct || !loopback) {
				print "missing Coordinator/direct or Coordinator/loopback benchmark" > "/dev/stderr"
				exit 1
			}
			if (loopback > factor * direct) {
				printf "coordinator loopback %g ns/op exceeds %g x direct %g ns/op\n", loopback, factor, direct > "/dev/stderr"
				exit 1
			}
		}' "$out"
	echo "coordinator merge overhead within factor $coord_factor of direct" >&2
fi

if [ -n "$mc_ceiling" ]; then
	awk -v ceiling="$mc_ceiling" '
		/"bench":"mc-serial"/ {
			seen = 1
			if (match($0, /"ns_sample":[0-9.e+]+/)) {
				ns = substr($0, RSTART + 12, RLENGTH - 12)
				if (ns + 0 > ceiling + 0) {
					bad = 1
					print "mc-serial " ns " ns/sample exceeds ceiling " ceiling > "/dev/stderr"
				}
			}
		}
		END {
			if (!seen) { print "no mc-serial benchmark in output" > "/dev/stderr"; exit 1 }
			exit bad
		}' "$out"
	echo "mc-serial ns/sample within ceiling $mc_ceiling" >&2
fi

if [ -n "$mc_par_factor" ]; then
	awk -v factor="$mc_par_factor" '
		/"bench":"mc-serial"/ {
			if (match($0, /"ns_sample":[0-9.e+]+/))
				serial = substr($0, RSTART + 12, RLENGTH - 12) + 0
		}
		/"bench":"mc-parallel"/ {
			if (match($0, /"ns_sample":[0-9.e+]+/))
				parallel = substr($0, RSTART + 12, RLENGTH - 12) + 0
		}
		END {
			if (!serial || !parallel) {
				print "missing mc-serial or mc-parallel benchmark" > "/dev/stderr"
				exit 1
			}
			if (parallel > factor * serial) {
				printf "mc-parallel %g ns/sample exceeds %g x mc-serial %g ns/sample\n", parallel, factor, serial > "/dev/stderr"
				exit 1
			}
		}' "$out"
	echo "mc-parallel within factor $mc_par_factor of mc-serial" >&2
fi

if [ -n "$coord_allocs" ]; then
	awk -v ceiling="$coord_allocs" '
		/"bench":"Coordinator\/loopback"/ {
			seen = 1
			if (match($0, /"allocs_op":[0-9.e+]+/)) {
				a = substr($0, RSTART + 12, RLENGTH - 12)
				if (a + 0 > ceiling + 0) {
					bad = 1
					print "coordinator loopback " a " allocs/op exceeds ceiling " ceiling > "/dev/stderr"
				}
			}
		}
		END {
			if (!seen) { print "no Coordinator/loopback benchmark in output" > "/dev/stderr"; exit 1 }
			exit bad
		}' "$out"
	echo "coordinator loopback allocs/op within ceiling $coord_allocs" >&2
fi
