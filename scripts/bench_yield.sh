#!/bin/sh
# Runs the BenchmarkLinkYield suite and emits BENCH_yield.json — one
# object per sub-benchmark with the timing and the custom metrics — so
# the yield engine's performance trajectory accumulates across
# commits.
#
# Usage: scripts/bench_yield.sh [benchtime]   (default 5x)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-5x}"
out="BENCH_yield.json"

go test -run '^$' -bench 'BenchmarkLinkYield' -benchtime "$benchtime" . |
	awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
	/^BenchmarkLinkYield\// {
		# Fields: name iterations N ns/op [value unit]...
		split($1, parts, "/")
		printf "%s{\"bench\":\"%s\",\"commit\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s",
			(n++ ? ",\n" : "[\n"), parts[2], commit, $2, $3
		for (i = 5; i < NF; i += 2) {
			unit = $(i + 1)
			gsub(/[^A-Za-z0-9]/, "_", unit)
			printf ",\"%s\":%s", unit, $i
		}
		printf "}"
	}
	END {
		if (n) print "\n]"
		else { print "benchmark produced no samples" > "/dev/stderr"; exit 1 }
	}' >"$out"

echo "wrote $out:" >&2
cat "$out"
