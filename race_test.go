package predint

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDesignLinkConcurrent hammers the facade from many goroutines
// with a mix of technologies, styles, and objectives. Run under
// `go test -race`; it pins the package-level calibration cache and
// the per-model design caches as safe for concurrent use, and that
// concurrent callers get the same answers as serial ones.
func TestDesignLinkConcurrent(t *testing.T) {
	reqs := []LinkRequest{
		{Tech: "90nm", LengthMM: 5},
		{Tech: "90nm", LengthMM: 5, DelayOptimal: true},
		{Tech: "90nm", LengthMM: 8, Style: Staggered},
		{Tech: "65nm", LengthMM: 3, PowerWeight: Float(0.7)},
		{Tech: "65nm", LengthMM: 3, ActivityFactor: Float(0.05)},
		{Tech: "45nm", LengthMM: 10, Style: Shielded, DelayOptimal: true},
		{Tech: "32nm", LengthMM: 2, Bits: Int(64)},
	}
	want := make([]LinkResult, len(reqs))
	for i, req := range reqs {
		res, err := DesignLink(req)
		if err != nil {
			t.Fatalf("serial reference %d: %v", i, err)
		}
		want[i] = res
	}

	const goroutines = 12
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			// Stagger the starting request so goroutines collide on
			// different cache entries at different times.
			for k := 0; k < 3*len(reqs); k++ {
				i := (g + k) % len(reqs)
				res, err := DesignLink(reqs[i])
				if err != nil {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				if res != want[i] {
					t.Errorf("goroutine %d req %d: concurrent result diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSynthesizeNoCConcurrent runs full NoC syntheses in parallel —
// each run internally fans out its merge loop too, so this stacks
// both levels of concurrency on the shared caches.
func TestSynthesizeNoCConcurrent(t *testing.T) {
	ref, err := SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm"})
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	var wg sync.WaitGroup
	results := make([]NoCResult, runs)
	errs := make([]error, runs)
	wg.Add(runs)
	for r := 0; r < runs; r++ {
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm"})
		}(r)
	}
	wg.Wait()
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Fatalf("run %d: %v", r, errs[r])
		}
		if results[r].Metrics != ref.Metrics {
			t.Fatalf("run %d metrics diverged: %+v vs %+v", r, results[r].Metrics, ref.Metrics)
		}
		if results[r].Links != ref.Links || results[r].Routers != ref.Routers {
			t.Fatalf("run %d topology diverged", r)
		}
	}
}

// TestLinkYieldConcurrent stacks concurrent facade calls on top of the
// engine's own worker fan-out: every goroutine runs a parallel Monte
// Carlo estimation against the shared coefficient cache and must get
// the serial reference bit for bit.
func TestLinkYieldConcurrent(t *testing.T) {
	reqs := []YieldRequest{
		{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1},
		{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 2, TargetPS: Float(470)},
		{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1, TargetPS: Float(520), ImportanceSampling: true},
		{Tech: "65nm", LengthMM: 3, Samples: Int(1024), Seed: 3, Workers: 4},
	}
	want := make([]YieldResult, len(reqs))
	for i, req := range reqs {
		res, err := LinkYield(req)
		if err != nil {
			t.Fatalf("serial reference %d: %v", i, err)
		}
		want[i] = res
	}

	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 2*len(reqs); k++ {
				i := (g + k) % len(reqs)
				res, err := LinkYield(reqs[i])
				if err != nil {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				if res != want[i] {
					t.Errorf("goroutine %d req %d: concurrent result diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLinkYieldCtxCancellation covers the facade-level cancellation
// contract end to end: a pre-cancelled context is refused, a mid-run
// cancel of a huge-budget estimation returns promptly with ctx.Err(),
// and — the cache-unpoisoning half — the same request afterwards still
// reproduces the reference bit for bit (the package-level calibration
// cache must not have memoized the cancellation).
func TestLinkYieldCtxCancellation(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1}
	ref, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LinkYieldCtx(dead, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	big := req
	big.Samples = Int(100_000_000)
	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err = LinkYieldCtx(ctx, big)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("mid-run cancel took %v, want prompt return", elapsed)
	}
	cancel2()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}

	after, err := LinkYield(req)
	if err != nil {
		t.Fatalf("post-cancel run failed (poisoned cache?): %v", err)
	}
	if after != ref {
		t.Fatalf("post-cancel run diverged from reference:\n%+v\nvs\n%+v", after, ref)
	}
}

// TestLinkYieldCtxLiveMatchesNoCtx pins that a live context is free:
// the facade result under a never-expiring deadline is bit-identical
// to the context-free call.
func TestLinkYieldCtxLiveMatchesNoCtx(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 7, Workers: 4}
	ref, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := LinkYieldCtx(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("live-ctx facade diverged: %+v vs %+v", got, ref)
	}
}

// TestSynthesizeNoCCtxCancellation pins the synthesis facade: a
// pre-cancelled context is refused up front, a cancel racing a live
// sweep either completes identically or surfaces ctx.Err() — and in
// both worlds the next context-free synthesis reproduces the reference
// exactly (no design-cache poisoning).
func TestSynthesizeNoCCtxCancellation(t *testing.T) {
	req := NoCRequest{Case: "DVOPD", Tech: "90nm"}
	ref, err := SynthesizeNoC(req)
	if err != nil {
		t.Fatal(err)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SynthesizeNoCCtx(dead, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	res, err := SynthesizeNoCCtx(ctx, req)
	cancel2()
	switch {
	case err == nil:
		// The sweep beat the cancel; it must then be the reference.
		if res.Metrics != ref.Metrics {
			t.Fatalf("race-completed run diverged: %+v vs %+v", res.Metrics, ref.Metrics)
		}
	case errors.Is(err, context.Canceled):
		// Expected mid-sweep abort.
	default:
		t.Fatalf("mid-sweep cancel: got %v, want context.Canceled or success", err)
	}

	after, err := SynthesizeNoC(req)
	if err != nil {
		t.Fatalf("post-cancel synthesis failed (poisoned cache?): %v", err)
	}
	if after.Metrics != ref.Metrics || after.Links != ref.Links || after.Routers != ref.Routers {
		t.Fatalf("post-cancel synthesis diverged from reference")
	}
}

// TestLinkYieldCtxCancelConcurrent hammers cancellation and live runs
// together: half the goroutines get cancelled mid-estimation, half run
// to completion against the shared caches; the completed runs must all
// be bit-identical to the serial reference. Run under `go test -race`.
func TestLinkYieldCtxCancelConcurrent(t *testing.T) {
	req := YieldRequest{Tech: "90nm", LengthMM: 5, Samples: Int(2048), Seed: 9}
	ref, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				res, err := LinkYield(req)
				if err != nil {
					t.Errorf("live goroutine %d: %v", g, err)
					return
				}
				if res != ref {
					t.Errorf("live goroutine %d diverged", g)
				}
				return
			}
			big := req
			big.Samples = Int(50_000_000)
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(g)*time.Millisecond)
			defer cancel()
			if _, err := LinkYieldCtx(ctx, big); err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled goroutine %d: unexpected error %v", g, err)
			}
		}(g)
	}
	wg.Wait()

	// The shared caches must still hand every later caller the
	// reference answer.
	after, err := LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	if after != ref {
		t.Fatalf("post-hammer run diverged from reference")
	}
}
