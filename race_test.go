package predint

import (
	"sync"
	"testing"
)

// TestDesignLinkConcurrent hammers the facade from many goroutines
// with a mix of technologies, styles, and objectives. Run under
// `go test -race`; it pins the package-level calibration cache and
// the per-model design caches as safe for concurrent use, and that
// concurrent callers get the same answers as serial ones.
func TestDesignLinkConcurrent(t *testing.T) {
	reqs := []LinkRequest{
		{Tech: "90nm", LengthMM: 5},
		{Tech: "90nm", LengthMM: 5, DelayOptimal: true},
		{Tech: "90nm", LengthMM: 8, Style: Staggered},
		{Tech: "65nm", LengthMM: 3, PowerWeight: Float(0.7)},
		{Tech: "65nm", LengthMM: 3, ActivityFactor: Float(0.05)},
		{Tech: "45nm", LengthMM: 10, Style: Shielded, DelayOptimal: true},
		{Tech: "32nm", LengthMM: 2, Bits: Int(64)},
	}
	want := make([]LinkResult, len(reqs))
	for i, req := range reqs {
		res, err := DesignLink(req)
		if err != nil {
			t.Fatalf("serial reference %d: %v", i, err)
		}
		want[i] = res
	}

	const goroutines = 12
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			// Stagger the starting request so goroutines collide on
			// different cache entries at different times.
			for k := 0; k < 3*len(reqs); k++ {
				i := (g + k) % len(reqs)
				res, err := DesignLink(reqs[i])
				if err != nil {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				if res != want[i] {
					t.Errorf("goroutine %d req %d: concurrent result diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSynthesizeNoCConcurrent runs full NoC syntheses in parallel —
// each run internally fans out its merge loop too, so this stacks
// both levels of concurrency on the shared caches.
func TestSynthesizeNoCConcurrent(t *testing.T) {
	ref, err := SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm"})
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	var wg sync.WaitGroup
	results := make([]NoCResult, runs)
	errs := make([]error, runs)
	wg.Add(runs)
	for r := 0; r < runs; r++ {
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm"})
		}(r)
	}
	wg.Wait()
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Fatalf("run %d: %v", r, errs[r])
		}
		if results[r].Metrics != ref.Metrics {
			t.Fatalf("run %d metrics diverged: %+v vs %+v", r, results[r].Metrics, ref.Metrics)
		}
		if results[r].Links != ref.Links || results[r].Routers != ref.Routers {
			t.Fatalf("run %d topology diverged", r)
		}
	}
}

// TestLinkYieldConcurrent stacks concurrent facade calls on top of the
// engine's own worker fan-out: every goroutine runs a parallel Monte
// Carlo estimation against the shared coefficient cache and must get
// the serial reference bit for bit.
func TestLinkYieldConcurrent(t *testing.T) {
	reqs := []YieldRequest{
		{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1},
		{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 2, TargetPS: Float(470)},
		{Tech: "90nm", LengthMM: 5, Samples: Int(1024), Seed: 1, TargetPS: Float(520), ImportanceSampling: true},
		{Tech: "65nm", LengthMM: 3, Samples: Int(1024), Seed: 3, Workers: 4},
	}
	want := make([]YieldResult, len(reqs))
	for i, req := range reqs {
		res, err := LinkYield(req)
		if err != nil {
			t.Fatalf("serial reference %d: %v", i, err)
		}
		want[i] = res
	}

	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 2*len(reqs); k++ {
				i := (g + k) % len(reqs)
				res, err := LinkYield(reqs[i])
				if err != nil {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
					return
				}
				if res != want[i] {
					t.Errorf("goroutine %d req %d: concurrent result diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
