package predint

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/buffering"
	"repro/internal/estimator"
	"repro/internal/variation"
)

// This file exposes the sample-index sharding seam of a yield request
// to the serving layer: a coordinator replica plans the request once,
// asks worker replicas for contiguous index ranges (each worker replans
// identically — the plan is a pure function of the request), and merges
// the partial accumulators in index order. The merge replays the exact
// serial fold of the local kernel, so the coordinator's Estimate is
// bit-identical to a single-process run at any shard count.

// ErrNotShardable marks yield requests that cannot be partitioned by
// sample index: sizing requests (YieldTarget — the candidate search
// drives sampling adaptively), AIS (stage proposals depend on all prior
// draws), WCD (no sampling at all), and auto-routed deep-sigma requests
// (the pre-filter cascade may answer analytically with zero samples).
// The serving layer falls back to local execution for these.
var ErrNotShardable = errors.New("predint: request cannot be sharded by sample index")

// YieldShardPlan is a validated yield request bound to its designed
// link, ready to collect or merge sample-index shards. Every replica
// planning the same request derives the same plan — the buffering
// optimization and the (seed, index)-keyed sampling are deterministic —
// which is what lets shards collected on different machines merge into
// the single-process answer.
type YieldShardPlan struct {
	p    *yieldPlan
	des  buffering.Design
	sc   *variation.LinkScenario
	kind estimator.Kind
}

// YieldShardPlanFor validates the request and builds the shard plan,
// or reports (wrapping ErrNotShardable) that the request must run
// locally.
func YieldShardPlanFor(req YieldRequest) (*YieldShardPlan, error) {
	p, err := req.plan()
	if err != nil {
		return nil, err
	}
	if p.yt != nil {
		return nil, fmt.Errorf("%w: sizing (yield-target) requests drive sampling adaptively", ErrNotShardable)
	}
	kind, ok, err := p.mc.ShardableKind()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: estimator rung is not index-keyed", ErrNotShardable)
	}
	des, err := buffering.Optimize(p.seg, p.bufOpts)
	if err != nil {
		return nil, err
	}
	return &YieldShardPlan{p: p, des: des, sc: p.scenario(des), kind: kind}, nil
}

// Kind names the resolved estimator rung the shards will run.
func (pl *YieldShardPlan) Kind() string { return string(pl.kind) }

// Samples is the resolved total sample budget — the index range to
// cover is [0, Samples).
func (pl *YieldShardPlan) Samples() int {
	samples, _ := pl.p.mc.ResolvedSampling()
	return samples
}

// Batch is the resolved batch size. Shard boundaries need not align to
// it, but the global stopping rule only fires at batch boundaries of
// the merged fold, so batch-aligned shards waste the least work.
func (pl *YieldShardPlan) Batch() int {
	_, batch := pl.p.mc.ResolvedSampling()
	return batch
}

// ClassHash is a deterministic hash of the request's link class — the
// same fields that key the yield-surface cache. Every replica computes
// the same hash for the same request, so it can consistent-hash the
// class onto a stable owner replica.
func (pl *YieldShardPlan) ClassHash() uint64 {
	h := fnv.New64a()
	k := pl.p.surfaceKey()
	fmt.Fprintf(h, "%v|%v|%v|%v|%v|%v", k.TechHash, k.Geom, k.InputSlew, k.PowerWeight, k.Space, pl.p.target)
	return h.Sum64()
}

// CollectCtx evaluates the contiguous index range [start, start+count)
// and returns its sparse partial accumulator plus whether the shifted
// (importance-sampled) kernel was in effect. Every replica reports the
// same shifted flag for the same request: the shift construction is
// deterministic in (scenario, seed).
func (pl *YieldShardPlan) CollectCtx(ctx context.Context, start, count int) (variation.Partial, bool, error) {
	part, kind, shifted, err := variation.CollectPartialCtx(ctx, pl.sc, pl.p.mc, start, count)
	if err != nil {
		return variation.Partial{}, false, err
	}
	if kind != pl.kind {
		return variation.Partial{}, false, fmt.Errorf("predint: shard resolved estimator %q, plan expected %q", kind, pl.kind)
	}
	return part, shifted, nil
}

// Merge folds the collected shards in index order, applying the global
// stopping rule exactly where the local kernel would. done reports
// that the fold either hit a stopping rule or consumed the full
// budget — outstanding shards past that point are dead work.
func (pl *YieldShardPlan) Merge(parts []variation.Partial, shifted bool) (variation.Estimate, bool, error) {
	return variation.MergePartials(pl.p.mc, pl.kind, shifted, parts)
}

// Result assembles the externally served YieldResult from a merged
// estimate, exactly as the local full-sampling path would.
func (pl *YieldShardPlan) Result(est variation.Estimate) YieldResult {
	return YieldResult{
		Repeaters:         pl.des.N,
		RepeaterSize:      pl.des.Size,
		NominalDelay:      pl.des.Delay,
		Target:            pl.p.target,
		Yield:             est.Yield,
		FailProb:          est.FailProb,
		StdErr:            est.StdErr,
		CI95:              est.CI95(),
		Samples:           est.Samples,
		ImportanceSampled: est.Shifted,
		Estimator:         string(est.Estimator),
		VarianceReduction: est.VarianceReduction,
		Source:            SourceMC,
	}
}
