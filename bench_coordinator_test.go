package predint_test

// Coordinator merge-overhead benches, in an external test package:
// internal/coordinator imports the facade, so the loopback harness
// cannot live in bench_test.go's internal package without a cycle.
//
// "direct" runs the estimation in-process; "loopback" routes the
// identical request through a coordinator with one loopback worker —
// full shard protocol (HTTP + JSON + partial merge) over a single
// local replica. Their ratio is the protocol's overhead on top of the
// kernel, gated in CI by scripts/bench_yield.sh's coordinator ceiling:
// the merge must stay a small constant factor, because it is pure
// bookkeeping around the same sample evaluations.

import (
	"context"
	"net/http/httptest"
	"testing"

	predint "repro"
	"repro/internal/coordinator"
)

func coordinatorBenchRequest() predint.YieldRequest {
	return predint.YieldRequest{
		Tech:      "90nm",
		LengthMM:  5,
		Samples:   predint.Int(2048),
		Seed:      1,
		TargetPS:  predint.Float(520),
		NoSurface: true,
	}
}

func BenchmarkLinkYieldCoordinator(b *testing.B) {
	req := coordinatorBenchRequest()
	want, err := predint.LinkYield(req)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := predint.LinkYield(req)
			if err != nil {
				b.Fatal(err)
			}
			if res != want {
				b.Fatalf("direct run drifted: %+v != %+v", res, want)
			}
		}
	})

	// A trailing digit in the name would collide with the benchmark
	// table's GOMAXPROCS-suffix stripping, so the single-worker run is
	// plain "loopback".
	b.Run("loopback", func(b *testing.B) {
		ts := httptest.NewServer(coordinator.Handler(nil))
		defer ts.Close()
		coord, err := coordinator.New(coordinator.Config{Workers: []string{ts.URL}})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := coord.Estimate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if res != want {
				b.Fatalf("coordinated run not bit-identical: %+v != %+v", res, want)
			}
		}
	})
}
