// Serving-layer demo: talk to a running predintd instance and show
// the hardened contract — a full Monte Carlo yield estimate, then the
// same question constrained enough to come back degraded (the
// closed-form nominal estimate, marked as such).
//
// Start the server first, then run the client:
//
//	go run ./cmd/predintd -max-yield-cost 1024 &
//	go run ./examples/predintd
//
// Point it elsewhere with PREDINTD_ADDR=host:port.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

func post(client *http.Client, url, body string) (map[string]any, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("non-JSON response (%d): %.200s", resp.StatusCode, raw)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %v (Retry-After %q)",
			resp.StatusCode, doc["error"], resp.Header.Get("Retry-After"))
	}
	return doc, nil
}

func main() {
	addr := os.Getenv("PREDINTD_ADDR")
	if addr == "" {
		addr = "localhost:8080"
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 60 * time.Second}

	if _, err := client.Get(base + "/healthz"); err != nil {
		log.Fatalf("no predintd at %s — start one with `go run ./cmd/predintd` (%v)", addr, err)
	}

	// A link design: the facade's DesignLink over the wire.
	link, err := post(client, base+"/v1/link", `{"tech": "65nm", "length_mm": 5}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 mm link at 65nm: %v repeaters of size D%v, delay %.1f ps\n",
		link["repeaters"], link["repeater_size"], link["delay_s"].(float64)*1e12)

	// An affordable yield estimation runs the full Monte Carlo engine.
	full, err := post(client, base+"/v1/yield",
		`{"tech": "65nm", "length_mm": 5, "samples": 1024, "seed": 1, "target_ps": 560}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yield (%v samples): %.4f ± %.2g\n",
		full["samples"], full["yield"].(float64), full["ci95"].(float64))

	// A budget past the server's -max-yield-cost ceiling degrades: the
	// server answers with the closed-form nominal-corner evaluation
	// instead of queueing an unbounded amount of work. The marker and
	// the vacuous rule-of-three bound make the downgrade explicit.
	degraded, err := post(client, base+"/v1/yield",
		`{"tech": "65nm", "length_mm": 5, "samples": 1000000, "seed": 1, "target_ps": 560}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1M-sample request: degraded=%v, nominal delay %.1f ps, yield step %v, fail-prob bound %v\n",
		degraded["degraded"], degraded["nominal_delay_s"].(float64)*1e12,
		degraded["yield"], degraded["fail_prob_bound"])

	// The serving metrics (queue depth, sheds, degrades, latency
	// quantiles) ride the same /metrics snapshot as the engine
	// counters.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server so far: %d requests, %d shed, %d degraded, p99 %d µs\n",
		snap["predintd.requests"], snap["predintd.shed"],
		snap["predintd.degraded"], snap["predintd.latency.p99_us"])
}
