// Techscaling: the interconnect-scaling study the paper's models make
// cheap — one fixed 5 mm global link evaluated across all six
// technology nodes (90 → 16 nm), with the nanometer resistance
// corrections (electron scattering, barrier thickness) toggled to
// show why the classic models drift as wires shrink.
package main

import (
	"fmt"
	"log"

	predint "repro"
	"repro/internal/tech"
	"repro/internal/wire"
)

func main() {
	fmt.Println("A fixed 5 mm 128-bit global link across technology nodes")
	fmt.Println()
	fmt.Printf("%-6s %5s %6s | %10s %6s %6s | %9s %9s | %12s\n",
		"tech", "Vdd", "w[nm]", "delay[ps]", "reps", "size", "dyn[mW]", "leak[mW]", "R corr. [%]")

	for _, name := range predint.Technologies() {
		res, err := predint.DesignLink(predint.LinkRequest{
			Tech: name, LengthMM: 5, DelayOptimal: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		tc := tech.MustLookup(name)
		seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
		corr := (seg.Resistance()/seg.ClassicResistance() - 1) * 100

		fmt.Printf("%-6s %5.2f %6.0f | %10.0f %6d %6g | %9.2f %9.4f | %12.1f\n",
			name, tc.Vdd, tc.Global.Width*1e9,
			res.Delay*1e12, res.Repeaters, res.RepeaterSize,
			res.DynamicPower*1e3, res.LeakagePower*1e3, corr)
	}

	fmt.Println()
	fmt.Println("Takeaways:")
	fmt.Println(" * The same physical distance costs more delay at every new node: wire")
	fmt.Println("   RC per mm rises faster than gates speed up (the 'future of wires').")
	fmt.Println(" * The scattering + barrier corrections grow from a few percent at 90nm")
	fmt.Println("   to a large fraction of total resistance at 16nm — models without them")
	fmt.Println("   (rightmost column) are increasingly optimistic exactly where accuracy")
	fmt.Println("   matters most.")
	fmt.Println(" * The 45nm low-power node breaks the leakage trend (high Vth library).")
}
