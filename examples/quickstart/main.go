// Quickstart: design one 5 mm, 128-bit global link at 65 nm with the
// calibrated predictive models and print its implementation and
// predicted metrics — the few-line usage the library is built for.
package main

import (
	"fmt"
	"log"

	predint "repro"
)

func main() {
	res, err := predint.DesignLink(predint.LinkRequest{
		Tech:     "65nm",
		LengthMM: 5,
		// Stick to characterized library cells so the golden
		// cross-check below evaluates the same implementation.
		LibrarySizesOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("5 mm 128-bit global link at 65nm (SWSS, power-weighted buffering)")
	fmt.Printf("  buffering:     %d repeaters of size D%g\n", res.Repeaters, res.RepeaterSize)
	fmt.Printf("  delay:         %.1f ps (output slew %.1f ps)\n", res.Delay*1e12, res.OutputSlew*1e12)
	fmt.Printf("  dynamic power: %.3f mW (whole bus, α=0.15 at 2.25 GHz)\n", res.DynamicPower*1e3)
	fmt.Printf("  leakage power: %.3f mW\n", res.LeakagePower*1e3)
	fmt.Printf("  silicon area:  %.4f mm²\n", res.Area*1e6)
	fmt.Printf("  wire parasitics per bit: %.1f Ω, %.1f fF (scattering+barrier corrected)\n",
		res.WireResistance, res.WireCapacitance*1e15)

	// Compare against the golden sign-off engine for the same
	// implementation (characterizes the 65nm library on first use).
	fmt.Println("\nrunning golden sign-off analysis for the same line...")
	golden, err := predint.GoldenLinkDelay("65nm", res.RepeaterSize, res.Repeaters, 5, predint.SWSS,
		predint.DefaultInputSlewPS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  golden delay:  %.1f ps (model error %+.1f%%)\n",
		golden*1e12, (res.Delay-golden)/golden*100)
}
