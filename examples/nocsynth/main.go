// Nocsynth: synthesize the VPROC (42-core) network-on-chip at three
// technology nodes under both interconnect models and show how model
// accuracy changes the architecture the tool picks — the paper's
// Table III story as a runnable program.
package main

import (
	"fmt"
	"log"

	predint "repro"
)

func main() {
	fmt.Println("COSI-style NoC synthesis: VPROC, 42 cores, 128-bit links")
	fmt.Println()
	fmt.Printf("%-6s %-9s %9s %9s %9s %9s %7s %8s %9s\n",
		"tech", "model", "dyn[mW]", "leak[mW]", "tot[mW]", "area[mm²]", "hops", "lat[ns]", "routers")

	for _, techName := range []string{"90nm", "65nm", "45nm"} {
		for _, useOriginal := range []bool{true, false} {
			res, err := predint.SynthesizeNoC(predint.NoCRequest{
				Case:             "VPROC",
				Tech:             techName,
				UseOriginalModel: useOriginal,
			})
			if err != nil {
				log.Fatal(err)
			}
			name := "proposed"
			if useOriginal {
				name = "original"
			}
			m := res.Metrics
			fmt.Printf("%-6s %-9s %9.2f %9.3f %9.2f %9.3f %7d %8.2f %9d\n",
				techName, name,
				m.LinkDynamic*1e3, m.LinkLeakage*1e3, m.TotalPower()*1e3,
				m.Area*1e6, m.MaxHops, m.AvgLatency*1e9, res.Routers)
		}
		fmt.Println()
	}

	fmt.Println("Reading the table:")
	fmt.Println(" * The original (Bakoglu/uncalibrated) model ignores coupling capacitance")
	fmt.Println("   and under-buffers, so it reports roughly half the dynamic power and a")
	fmt.Println("   fraction of the leakage and area — and it happily builds very long")
	fmt.Println("   links the silicon could not actually close timing on.")
	fmt.Println(" * Under the accurate model the wire-length limit tightens, so the tool")
	fmt.Println("   inserts more routers: hop count and latency rise with each node.")
	fmt.Println(" * Dynamic power rises from 65nm to 45nm because the 45nm low-power")
	fmt.Println("   library runs at 1.1V versus 1.0V.")
}
