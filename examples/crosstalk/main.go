// Crosstalk: measure the physics behind the Miller-factor
// abstractions. A full coupled three-line simulation sweeps the
// aggressor activity and the neighbor spacing, reporting the victim
// delay and the *empirical* Miller factor — the number the paper's
// λ = 1.51 and the sign-off bound of 2.0 approximate.
package main

import (
	"fmt"
	"log"

	predint "repro"
)

func main() {
	const techName = "90nm"
	fmt.Printf("Coupled-line crosstalk study (1 mm victim at %s, two aggressors)\n\n", techName)

	fmt.Println("== aggressor activity at minimum spacing ==")
	fmt.Printf("%-10s %12s %14s\n", "aggressors", "delay[ps]", "eff. Miller k")
	for _, mode := range []string{"same", "quiet", "opposite"} {
		res, err := predint.Crosstalk(predint.CrosstalkRequest{
			Tech: techName, LengthMM: 1, Aggressors: mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.1f %14.2f\n", mode, res.Delay*1e12, res.EffectiveMiller)
	}

	fmt.Println("\n== spacing sweep, worst-case (opposite) aggressors ==")
	fmt.Printf("%-12s %12s %14s\n", "spacing", "delay[ps]", "eff. Miller k")
	for _, sm := range []float64{1, 1.5, 2, 3} {
		res, err := predint.Crosstalk(predint.CrosstalkRequest{
			Tech: techName, LengthMM: 1, SpacingMult: sm, Aggressors: "opposite",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.1f %14.2f\n", fmt.Sprintf("%.1f× min", sm), res.Delay*1e12, res.EffectiveMiller)
	}

	fmt.Println("\nReading the tables: worst-case switching amplifies the coupling")
	fmt.Println("capacitance by ~2× (the sign-off assumption); quiet neighbors sit")
	fmt.Println("near 1, same-direction switching near 0. Extra spacing shrinks the")
	fmt.Println("coupling itself but the amplification ratio stays — which is why the")
	fmt.Println("models treat λ and the geometry separately.")
}
