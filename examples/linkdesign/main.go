// Linkdesign: a design-space exploration of one SoC's global links —
// the workload the paper's introduction motivates. For a spread of
// link lengths it contrasts delay-optimal against power-weighted
// buffering and the three bus design styles, showing the tradeoffs a
// system-level designer steers with these models.
package main

import (
	"fmt"
	"log"

	predint "repro"
)

func main() {
	const techName = "90nm"

	fmt.Printf("Global-link design space at %s (128-bit buses)\n\n", techName)

	fmt.Println("== buffering objective: delay-optimal vs power-weighted ==")
	fmt.Printf("%7s | %22s | %22s | %s\n", "L [mm]", "delay-optimal", "power-weighted", "tradeoff")
	fmt.Printf("%7s | %6s %5s %9s | %6s %5s %9s |\n", "", "ps", "reps", "mW", "ps", "reps", "mW")
	for _, L := range []float64{2, 5, 10, 15} {
		fast, err := predint.DesignLink(predint.LinkRequest{Tech: techName, LengthMM: L, DelayOptimal: true})
		if err != nil {
			log.Fatal(err)
		}
		eco, err := predint.DesignLink(predint.LinkRequest{Tech: techName, LengthMM: L, PowerWeight: predint.Float(0.6)})
		if err != nil {
			log.Fatal(err)
		}
		pf := fast.DynamicPower + fast.LeakagePower
		pe := eco.DynamicPower + eco.LeakagePower
		fmt.Printf("%7.0f | %6.0f %2dxD%-2g %8.2f | %6.0f %2dxD%-2g %8.2f | -%.0f%% power, +%.0f%% delay\n",
			L,
			fast.Delay*1e12, fast.Repeaters, fast.RepeaterSize, pf*1e3,
			eco.Delay*1e12, eco.Repeaters, eco.RepeaterSize, pe*1e3,
			(1-pe/pf)*100, (eco.Delay/fast.Delay-1)*100)
	}

	fmt.Println("\n== design styles on a 10 mm link (delay-optimal buffering) ==")
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "style", "delay[ps]", "dyn[mW]", "leak[mW]", "area[mm²]")
	for _, style := range []predint.Style{predint.SWSS, predint.Staggered, predint.Shielded} {
		res, err := predint.DesignLink(predint.LinkRequest{
			Tech: techName, LengthMM: 10, Style: style, DelayOptimal: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.0f %12.2f %12.3f %12.4f\n",
			style, res.Delay*1e12, res.DynamicPower*1e3, res.LeakagePower*1e3, res.Area*1e6)
	}
	fmt.Println("\nStaggering removes the Miller penalty without shielding's area cost;")
	fmt.Println("shielding pays double tracks for the same cross-talk immunity.")
}
