// Libertyflow: the two-machine calibration flow the paper describes —
// a characterization team ships a Liberty (.lib) file, and the
// modeling side calibrates the predictive coefficients from the file
// alone, with no simulator in the loop. This example characterizes
// the 90nm library, exports it to Liberty text, re-imports it, fits
// the coefficients from the imported data, and verifies they agree
// with the shipped (embedded) Table I values.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	predint "repro"
)

func main() {
	const techName = "90nm"

	fmt.Printf("1. characterizing %s repeater library (spice substrate)...\n", techName)
	var lib bytes.Buffer
	if err := predint.ExportLibrary(techName, &lib); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   exported %.1f kB of Liberty text\n", float64(lib.Len())/1024)

	fmt.Println("2. re-importing the .lib file and calibrating from it alone...")
	fromFile, err := predint.CalibrateFromLibrary(bytes.NewReader(lib.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("3. comparing against the shipped Table I coefficients...")
	shipped, err := predint.EmbeddedCoefficients(techName)
	if err != nil {
		log.Fatal(err)
	}

	rows := []struct {
		name        string
		file, embed float64
		unit        string
	}{
		{"intrinsic a0 (rise)", fromFile.Inv.Rise.A0 * 1e12, shipped.Inv.Rise.A0 * 1e12, "ps"},
		{"drive-res beta0 (rise)", fromFile.Inv.Rise.Beta0 * 1e3, shipped.Inv.Rise.Beta0 * 1e3, "mΩ·m"},
		{"slew gamma2 (fall)", fromFile.Inv.Fall.Gamma2, shipped.Inv.Fall.Gamma2, "s/F"},
		{"input-cap kappa", fromFile.Inv.Kappa * 1e9, shipped.Inv.Kappa * 1e9, "nF/m"},
		{"leakage slope", fromFile.Inv.Leak1 * 1e3, shipped.Inv.Leak1 * 1e3, "mW/m"},
		{"area slope", fromFile.Inv.Area1 * 1e6, shipped.Inv.Area1 * 1e6, "µm²/µm"},
	}
	fmt.Printf("   %-24s %14s %14s %8s\n", "coefficient", "from .lib", "embedded", "diff")
	worst := 0.0
	for _, r := range rows {
		diff := 0.0
		if r.embed != 0 {
			diff = math.Abs(r.file-r.embed) / math.Abs(r.embed)
		}
		if diff > worst {
			worst = diff
		}
		fmt.Printf("   %-24s %14.6g %14.6g %7.3f%%  [%s]\n", r.name, r.file, r.embed, diff*100, r.unit)
	}
	if worst > 1e-6 {
		log.Fatalf("round-trip calibration drifted by %.3g — Liberty export is lossy", worst)
	}
	fmt.Println("\nround trip exact: the .lib file carries everything calibration needs.")
}
