package predint

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its experiment via
// internal/experiments (the same code path as the cmd/ tools) and
// reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the entire evaluation.

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/buffering"
	"repro/internal/estimator"
	"repro/internal/experiments"
	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
	"repro/internal/wire"
	"repro/internal/wiresize"
)

// BenchmarkFig1IntrinsicDelay regenerates Fig. 1 (intrinsic delay vs
// input slew and inverter size) and reports the shape statistics.
func BenchmarkFig1IntrinsicDelay(b *testing.B) {
	tc := tech.MustLookup("90nm")
	var res *experiments.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig1(tc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SizeSpreadMax*1e12, "size-spread-ps")
	b.ReportMetric(res.SlewSpreadMin*1e12, "slew-spread-ps")
}

// BenchmarkTableICalibration runs the full Table I pipeline
// (characterized library → regressions) for the 90nm node.
func BenchmarkTableICalibration(b *testing.B) {
	tc := tech.MustLookup("90nm")
	lib, err := liberty.Get(tc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.Calibrate(lib); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIValidation regenerates the Table II accuracy study
// (90nm slice) and reports the worst errors of the proposed model and
// the baselines.
func BenchmarkTableIIValidation(b *testing.B) {
	cfg := experiments.TableIIConfig{Techs: []string{"90nm"}}
	var rows []experiments.TableIIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstProp, worstBase float64
	for _, r := range rows {
		worstProp = math.Max(worstProp, math.Abs(r.ErrProposed))
		worstBase = math.Max(worstBase, math.Max(math.Abs(r.ErrBakoglu), math.Abs(r.ErrPamunuwa)))
	}
	b.ReportMetric(worstProp*100, "worst-prop-%")
	b.ReportMetric(worstBase*100, "worst-base-%")
}

// BenchmarkTableIIINoCSynthesis regenerates the full Table III sweep
// (both test cases, three nodes, both models) and reports the 90nm
// VPROC dynamic-power ratio.
func BenchmarkTableIIINoCSynthesis(b *testing.B) {
	var rows []experiments.TableIIIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableIII(experiments.TableIIIConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	orig, err := experiments.FindTableIII(rows, "90nm", "VPROC", "original")
	if err != nil {
		b.Fatal(err)
	}
	prop, err := experiments.FindTableIII(rows, "90nm", "VPROC", "proposed")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(prop.Metrics.LinkDynamic/orig.Metrics.LinkDynamic, "dyn-ratio")
	b.ReportMetric(prop.Metrics.AvgHops, "prop-avg-hops")
}

// BenchmarkStaggeringAblation regenerates the Section III-D buffering
// study and reports the power-saving/delay-cost tradeoff.
func BenchmarkStaggeringAblation(b *testing.B) {
	var rows []experiments.BufferingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.BufferingStudy(experiments.BufferingConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PowerSaving*100, "power-saving-%")
	b.ReportMetric(rows[0].DelayCost*100, "delay-cost-%")
	b.ReportMetric(rows[0].StaggerDelayGain*100, "stagger-gain-%")
}

// BenchmarkModelVsGoldenRuntime reproduces the RT column: the paper's
// model was ≥2.1× faster than sign-off analysis.
func BenchmarkModelVsGoldenRuntime(b *testing.B) {
	cfg := experiments.TableIIConfig{
		Techs:          []string{"90nm"},
		LengthsMM:      []float64{5},
		Styles:         []wire.Style{wire.SWSS},
		MeasureRuntime: true,
	}
	var rows []experiments.TableIIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].RuntimeRatio, "speedup-x")
}

// BenchmarkSensitivityStudy quantifies the paper's motivating claim:
// system-level decisions move with interconnect-model accuracy. It
// reports how many extra routers a 2× delay-model error forces into
// the DVOPD network.
func BenchmarkSensitivityStudy(b *testing.B) {
	var rows []experiments.SensitivityRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Sensitivity(experiments.SensitivityConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(float64(last.Metrics.Routers-first.Metrics.Routers), "extra-routers-at-2x")
	b.ReportMetric(last.Metrics.AvgHops-first.Metrics.AvgHops, "extra-avg-hops-at-2x")
}

// --- Ablation benches for DESIGN.md's called-out design choices ---

// BenchmarkAblationResistanceCorrections quantifies the scattering +
// barrier resistance corrections: the ratio of corrected to classic
// wire resistance at minimum width.
func BenchmarkAblationResistanceCorrections(b *testing.B) {
	tc := tech.MustLookup("45nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = seg.Resistance() / seg.ClassicResistance()
	}
	b.ReportMetric(ratio, "R-corr-ratio")
}

// BenchmarkAblationMillerFactor compares the wire-delay model under
// λ=1.51 (worst-case SWSS), λ=0 (staggered), and coupling ignored
// entirely (the Bakoglu deficiency).
func BenchmarkAblationMillerFactor(b *testing.B) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	wn, wp := tc.InverterWidths(12)
	ci := coeffs.InputCap(liberty.Inverter, wn, wp)
	var worst, stag, ignored float64
	for i := 0; i < b.N; i++ {
		sw := wire.NewSegment(tc, 1e-3, wire.SWSS)
		st := wire.NewSegment(tc, 1e-3, wire.Staggered)
		worst = model.WireDelay(sw, ci)
		stag = model.WireDelay(st, ci)
		// Ignoring coupling: only the quiet ground part.
		ignored = sw.Resistance() * (0.4*sw.GroundCap() + 0.7*ci)
	}
	b.ReportMetric(worst/ignored, "worst-vs-ignored")
	b.ReportMetric(stag/ignored, "staggered-vs-ignored")
}

// BenchmarkAblationEffectiveMiller measures the *empirical* Miller
// factor from the coupled three-line simulation — the physical
// quantity the model's λ=1.51 and the golden engine's 2.0
// approximate.
func BenchmarkAblationEffectiveMiller(b *testing.B) {
	tc := tech.MustLookup("90nm")
	cfg := sta.CoupledConfig{
		Seg:      wire.NewSegment(tc, 1e-3, wire.SWSS),
		DriverR:  200,
		LoadC:    10e-15,
		InSlew:   100e-12,
		Sections: 16,
	}
	var kWorst, kQuiet float64
	var err error
	for i := 0; i < b.N; i++ {
		cfg.Mode = sta.Opposite
		kWorst, err = sta.EffectiveMiller(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Mode = sta.Quiet
		kQuiet, err = sta.EffectiveMiller(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(kWorst, "k-worstcase")
	b.ReportMetric(kQuiet, "k-quiet")
}

// BenchmarkAblationSlewDependentRd compares the proposed
// slew-dependent drive resistance against the constant-R baseline on
// the same line.
func BenchmarkAblationSlewDependentRd(b *testing.B) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	spec := model.LineSpec{Kind: liberty.Inverter, Size: 12, N: 5, Segment: seg, InputSlew: 300e-12}
	bspec := baseline.LineSpec{Size: 12, N: 5, Segment: seg}
	var prop, bak float64
	for i := 0; i < b.N; i++ {
		t, err := coeffs.LineDelay(spec)
		if err != nil {
			b.Fatal(err)
		}
		prop = t.Delay
		d, err := baseline.LineDelay(baseline.Bakoglu, bspec)
		if err != nil {
			b.Fatal(err)
		}
		bak = d
	}
	b.ReportMetric(bak/prop, "const-vs-slewdep")
}

// BenchmarkAblationSearchStrategy compares the ternary-search
// buffering optimizer against exhaustive enumeration.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 10e-3, wire.SWSS)
	opts := buffering.Options{
		Coeffs: model.MustDefault("90nm"),
		Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
	}
	b.Run("ternary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := buffering.DelayOptimal(seg, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive-grid", func(b *testing.B) {
		coeffs := opts.Coeffs
		for i := 0; i < b.N; i++ {
			bestDelay := math.Inf(1)
			for _, size := range buffering.ExtendedSizes {
				for n := 1; n <= 64; n++ {
					t, err := coeffs.LineDelay(model.LineSpec{
						Kind: liberty.Inverter, Size: size, N: n, Segment: seg, InputSlew: 300e-12,
					})
					if err != nil {
						b.Fatal(err)
					}
					if t.Delay < bestDelay {
						bestDelay = t.Delay
					}
				}
			}
		}
	})
}

// BenchmarkAblationAreaModels compares the regression-based area
// model against the predictive (row-height/contact-pitch) variant.
func BenchmarkAblationAreaModels(b *testing.B) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	var reg, pred float64
	for i := 0; i < b.N; i++ {
		wn, wp := tc.InverterWidths(12)
		reg = coeffs.RepeaterArea(liberty.Inverter, wn)
		pred = model.PredictiveArea(tc, wn, wp)
	}
	b.ReportMetric(pred/reg, "pred-vs-regression")
}

// BenchmarkAblationWireSizing quantifies what geometry freedom buys: a
// 10 mm 45nm line, minimum geometry vs the width/spacing optimizer.
func BenchmarkAblationWireSizing(b *testing.B) {
	tc := tech.MustLookup("45nm")
	o := wiresize.Options{
		Buffering: buffering.Options{
			Coeffs: model.MustDefault("45nm"),
			Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		},
	}
	var best wiresize.Design
	var min buffering.Design
	var err error
	for i := 0; i < b.N; i++ {
		best, err = wiresize.Optimize(tc, 10e-3, wire.SWSS, o)
		if err != nil {
			b.Fatal(err)
		}
		min, err = buffering.DelayOptimal(wire.NewSegment(tc, 10e-3, wire.SWSS), o.Buffering)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((1-best.Buffer.Delay/min.Delay)*100, "delay-gain-%")
	b.ReportMetric(best.WidthMult, "width-mult")
	b.ReportMetric(best.PitchMult, "pitch-mult")
}

// BenchmarkDesignLink measures the public facade's end-to-end link
// design (the paper's "fast models for system-level designers"
// claim).
func BenchmarkDesignLink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DesignLink(LinkRequest{Tech: "65nm", LengthMM: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficValidation closes the loop between the analytic NoC
// metrics and the cycle-based traffic simulation, reporting the
// latency inflation over zero-load and the worst utilization mismatch.
func BenchmarkTrafficValidation(b *testing.B) {
	var res NoCResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm", SimulateTraffic: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Traffic.AvgLatency*1e9, "sim-lat-ns")
	b.ReportMetric(float64(res.Traffic.PacketsDelivered), "packets")
}

// BenchmarkSynthesizeNoCVPROC measures a full VPROC synthesis under
// the proposed model.
func BenchmarkSynthesizeNoCVPROC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SynthesizeNoC(NoCRequest{Case: "VPROC", Tech: "90nm"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkYield measures the Monte Carlo timing-yield engine on
// the 90nm 5mm link: both estimators, serial and fully parallel. The
// per-op time divided by 2048 is the per-sample cost of the
// perturb → rescale → evaluate path.
func BenchmarkLinkYield(b *testing.B) {
	for _, bc := range []struct {
		name    string
		is      bool
		workers int
	}{
		{"mc-serial", false, 1},
		{"mc-parallel", false, 0},
		{"is-serial", true, 1},
		{"is-parallel", true, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			req := YieldRequest{
				Tech: "90nm", LengthMM: 5,
				Samples: Int(2048), Seed: 1,
				TargetPS:           Float(520),
				Workers:            bc.workers,
				ImportanceSampling: bc.is,
			}
			var res YieldResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = LinkYield(req)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Yield, "yield")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/2048, "ns/sample")
			b.ReportMetric(2048, "samples/op")
			if bc.is {
				b.ReportMetric(res.VarianceReduction, "var-reduction-x")
			}
		})
	}
}

// BenchmarkLinkYieldSweep measures the cross-candidate sampling kernel
// on a 16-candidate sizing sweep of the 90nm 5mm link. "shared" scores
// every candidate in one EstimateYieldsShared pass — one draw, one
// perturbed technology, one rescaled coefficient set, and one wire
// extraction per sample serve all 16 candidates (common random
// numbers). "per-candidate" is the baseline that runs the single-link
// estimator once per candidate with the same options, paying that
// per-sample work 16 times over. ns/sample counts candidate-samples
// (samples summed over candidates), so the two sub-benchmarks are
// directly comparable; with -benchmem, allocs/op over samples/op is
// the steady-state allocation rate the kernel pins near zero.
func BenchmarkLinkYieldSweep(b *testing.B) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	var specs []model.LineSpec
	for _, size := range []float64{6, 8, 12, 16} {
		for _, n := range []int{6, 8, 10, 12} {
			specs = append(specs, model.LineSpec{
				Kind: liberty.Inverter, Size: size, N: n,
				Segment: seg, InputSlew: 300e-12,
			})
		}
	}
	const (
		samples = 1024
		target  = 520e-12
	)
	opts := variation.YieldOptions{Samples: samples, Seed: 1, Workers: 1}
	total := float64(len(specs) * samples)

	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		ms := &variation.MultiScenario{
			Base: tc, Coeffs: coeffs, Space: variation.DefaultSpace(),
			Specs: specs, Target: target,
		}
		for i := 0; i < b.N; i++ {
			if _, err := variation.EstimateYieldsShared(ms, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/total, "ns/sample")
		b.ReportMetric(total, "samples/op")
	})
	b.Run("per-candidate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				sc := &variation.LinkScenario{
					Base: tc, Coeffs: coeffs, Space: variation.DefaultSpace(),
					Spec: spec, Target: target,
				}
				if _, err := variation.EstimateLinkYield(sc, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/total, "ns/sample")
		b.ReportMetric(total, "samples/op")
	})
}

// BenchmarkLinkYieldAIS measures the adaptive-importance-sampling rung
// end-to-end: cross-entropy adaptation stages plus the self-normalized
// estimation stage. ns/sample counts every model evaluation (adaptation
// included), so it is directly comparable to the MC kernel's rate —
// the rung's overhead is proposal fitting, not slower evaluations.
// scripts/bench_yield.sh gates the rate in CI.
func BenchmarkLinkYieldAIS(b *testing.B) {
	b.ReportAllocs()
	req := YieldRequest{
		Tech: "90nm", LengthMM: 5,
		Samples: Int(4096), Seed: 1,
		TargetPS:  Float(520),
		Estimator: "ais",
		NoSurface: true,
	}
	var res YieldResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = LinkYield(req)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FailProb, "fail-prob")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(res.Samples), "ns/sample")
	b.ReportMetric(float64(res.Samples), "samples/op")
}

// BenchmarkLinkYieldQMC measures the scrambled-Sobol rung: the shared
// kernel's batching with low-discrepancy points through the inverse
// normal CDF in place of PRNG draws.
func BenchmarkLinkYieldQMC(b *testing.B) {
	b.ReportAllocs()
	req := YieldRequest{
		Tech: "90nm", LengthMM: 5,
		Samples: Int(2048), Seed: 1,
		TargetPS:  Float(520),
		Estimator: "qmc",
		NoSurface: true,
	}
	var res YieldResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = LinkYield(req)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Yield, "yield")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(res.Samples), "ns/sample")
	b.ReportMetric(float64(res.Samples), "samples/op")
}

// wcdBenchScenario builds the WCD benchmark scenario: the 90nm 5mm
// link under its optimized buffering (so the nominal design passes the
// 520 ps target and the bound search actually has a distance to find).
func wcdBenchScenario(b *testing.B) *variation.LinkScenario {
	b.Helper()
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	des, err := buffering.Optimize(seg, buffering.Options{
		Coeffs:    coeffs,
		InputSlew: 300e-12,
		Power:     model.PowerParams{Activity: 0.15, Freq: tc.Clock},
	})
	if err != nil {
		b.Fatal(err)
	}
	return &variation.LinkScenario{
		Base: tc, Coeffs: coeffs, Space: variation.DefaultSpace(),
		Spec: model.LineSpec{
			Kind: des.Kind, Size: des.Size, N: des.N,
			Segment: seg, InputSlew: 300e-12,
		},
		Target: 520e-12,
	}
}

// BenchmarkLinkYieldWCDSearch measures the full worst-case-distance
// bound search — gradient march, bisection, and projection refinements
// through the closed-form delay model. Informational: this is the
// pre-filter's one-time per-candidate cost, ~a hundred model
// evaluations against the thousands a sampling rung spends.
func BenchmarkLinkYieldWCDSearch(b *testing.B) {
	sc := wcdBenchScenario(b)
	var bound estimator.Bound
	var err error
	for i := 0; i < b.N; i++ {
		bound, err = variation.WCDForScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bound.Beta, "beta")
	b.ReportMetric(float64(bound.Evals), "model-evals")
}

// BenchmarkLinkYieldWCDPrefilter measures the certificate decision a
// deep-sigma query pays per candidate once the bound is in hand:
// Certify (does β clear the demanded sigma by the margin?) plus the
// conservative band. Pure closed-form normal math — this is what makes
// the cascade's "answer analytically, skip sampling" path effectively
// free, and scripts/bench_yield.sh gates it under 1 µs in CI.
func BenchmarkLinkYieldWCDPrefilter(b *testing.B) {
	sc := wcdBenchScenario(b)
	bound, err := variation.WCDForScenario(sc)
	if err != nil {
		b.Fatal(err)
	}
	var band float64
	var verdicts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bound.Certify(6, estimator.DefaultWCDMargin) != estimator.Inconclusive {
			verdicts++
		}
		band = bound.Band(estimator.DefaultWCDMargin)
	}
	b.ReportMetric(bound.Beta, "beta")
	b.ReportMetric(band, "band")
	b.ReportMetric(float64(verdicts)/float64(b.N), "conclusive-frac")
}

// BenchmarkLinkYieldSurfaceWarm measures the warm-start serving path:
// the first query runs full Monte Carlo and memoizes its estimate, so
// every benchmarked iteration is answered from the response surface —
// one plan validation, one design memo probe, one curve lookup. The
// per-op time is the warm-query latency the serving layer's <10 µs
// budget gates in CI (scripts/bench_yield.sh's surface ceiling).
func BenchmarkLinkYieldSurfaceWarm(b *testing.B) {
	EnableSurface()
	b.Cleanup(DisableSurface)
	req := YieldRequest{
		Tech: "90nm", LengthMM: 5,
		Samples: Int(2048), Seed: 1,
		TargetPS: Float(520),
	}
	if _, err := LinkYield(req); err != nil { // cold run: samples and records
		b.Fatal(err)
	}
	warm, err := LinkYield(req)
	if err != nil {
		b.Fatal(err)
	}
	if warm.Source != SourceSurface {
		b.Fatalf("surface did not warm: %+v", warm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := LinkYield(req)
		if err != nil {
			b.Fatal(err)
		}
		if res.Source != SourceSurface {
			b.Fatalf("warm query fell back to %q", res.Source)
		}
	}
	b.ReportMetric(warm.Yield, "yield")
}
