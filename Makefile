GO ?= go

.PHONY: all build test race vet staticcheck bench-yield fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when it is on PATH (CI installs it; locally it is
# optional so a bare toolchain can still run every other target).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Emits BENCH_yield.json with the yield engine's benchmark trajectory.
bench-yield:
	sh scripts/bench_yield.sh

fmt:
	gofmt -l -w .
