GO ?= go

.PHONY: all build test race bench-yield fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Emits BENCH_yield.json with the yield engine's benchmark trajectory.
bench-yield:
	sh scripts/bench_yield.sh

fmt:
	gofmt -l -w .
