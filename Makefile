GO ?= go

.PHONY: all build build-prod test race vet staticcheck bench-yield fuzz serve fmt

all: build test

build:
	$(GO) build ./...

# Production build: the fault-injection registry is compiled out.
build-prod:
	$(GO) build -tags prod ./...

# -shuffle=on randomizes test order, catching hidden inter-test state
# (the warm-surface cache is process-global; every test that enables it
# must clean up after itself).
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when it is on PATH (CI installs it; locally it is
# optional so a bare toolchain can still run every other target).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Emits BENCH_yield.json with the yield engine's benchmark trajectory.
bench-yield:
	sh scripts/bench_yield.sh

# Short coverage-guided run of the Liberty parser fuzzer (CI smoke).
fuzz:
	$(GO) test -fuzz=FuzzParseLibrary -fuzztime=10s -run FuzzParseLibrary ./internal/liberty

# Run the hardened HTTP serving layer on the default address.
serve:
	$(GO) run ./cmd/predintd

fmt:
	gofmt -l -w .
